//! `ntr-obs`: the observability layer — zero external dependencies,
//! consistent with the workspace's offline build.
//!
//! The routing stack has two performance-critical layers (the incremental
//! candidate-evaluation engine and the concurrent server) and one
//! question that keeps coming back: *where does the time go inside a
//! request?* This crate answers it without pulling in `tracing`,
//! `prometheus`, or `serde`:
//!
//! - [`log`] — a leveled logger controlled by the `NTR_LOG` environment
//!   variable (`off`, `error`, `warn`, `info`, `debug`, `trace`), used
//!   through the [`log_error!`](crate::log_error) …
//!   [`log_trace!`](crate::log_trace) macros. A disabled level costs one
//!   `Ordering::Relaxed` atomic load.
//! - [`span`] — span-based tracing: a thread-local span stack with
//!   monotonic timestamps and per-request trace ids. Disabled tracing
//!   (the default) costs one relaxed atomic load per span site.
//! - [`metrics`] — named [`Counter`](metrics::Counter)s,
//!   [`Gauge`](metrics::Gauge)s, and power-of-two-bucket
//!   [`Histogram`](metrics::Histogram)s collected in a
//!   [`MetricsRegistry`](metrics::MetricsRegistry).
//! - [`prometheus`] — renders a registry in Prometheus text exposition
//!   format, plus [`check_exposition`](prometheus::check_exposition), a
//!   tiny format checker shared by unit tests and the CI smoke gate.
//! - [`chrome`] — exports collected spans as Chrome trace-event JSON
//!   (loadable in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)),
//!   plus a validator used by tests.
//! - [`profile`] — aggregates collected spans into an inclusive/self-time
//!   call tree, exported as flamegraph folded stacks or a top-N
//!   self-time table (`route --profile-out`, the server's
//!   `{"op":"profile"}`).
//! - [`compare`] — statistical verdicts (regressed / improved /
//!   unchanged) over summarized measurements: the primitive behind the
//!   `ntr-bench` regression gate and `ntr-loadgen --baseline`.
//! - [`journal`] — the flight recorder: an always-on wait-free ring of
//!   wide per-request events and per-LDRG-iteration records, plus
//!   tail-sampled full-trace exemplars (slowest-K + every
//!   error/degraded/injected request) and a strict JSON-lines checker.
//! - [`json`] — the workspace's hand-rolled JSON value/parser/printer
//!   (rehomed from `ntr-server`, which re-exports it for compatibility).
//! - [`tsdb`] — an embedded fixed-memory time-series store: periodic
//!   registry snapshots into multi-resolution stamped rings
//!   (1 s/10 s/60 s), queryable (`{"op":"query"}`, `GET /tsdb`) and
//!   rendered as `/statusz` sparklines.
//! - [`slo`] — declarative latency/availability SLOs evaluated with
//!   multi-window burn-rate rules (fire iff fast *and* slow windows
//!   burn hot, clear with hysteresis), edge-counted so chaos tests can
//!   assert exact fire→clear cycles.
//! - [`sampler`] — the always-on sampling profiler: a background thread
//!   reads every live span stack (a seqlock-protected view maintained
//!   by [`span`]) at a fixed rate and aggregates the paths into the
//!   [`profile`] machinery (`GET /profilez`, `route
//!   --sample-profile-out`).
//!
//! # Example
//!
//! ```
//! use ntr_obs::{metrics::MetricsRegistry, span};
//!
//! // Metrics: register once, update from anywhere.
//! let registry = MetricsRegistry::new();
//! let requests = registry.counter("requests_total", "Requests handled");
//! requests.inc();
//! let text = ntr_obs::prometheus::render(&registry);
//! ntr_obs::prometheus::check_exposition(&text).unwrap();
//!
//! // Tracing: enable, record spans, export a Chrome trace.
//! span::set_enabled(true);
//! {
//!     let _request = span::span("request");
//!     let _inner = span::span("inner_phase");
//! }
//! span::set_enabled(false);
//! let spans = span::take_spans();
//! let trace = ntr_obs::chrome::chrome_trace(&spans);
//! ntr_obs::chrome::validate_chrome_trace(&trace).unwrap();
//! ```

pub mod chrome;
pub mod compare;
pub mod journal;
pub mod json;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod prometheus;
pub mod sampler;
pub mod slo;
pub mod span;
pub mod tsdb;

pub use journal::Journal;
pub use json::Json;
pub use log::Level;
pub use metrics::MetricsRegistry;
pub use span::{span, SpanRecord};
