//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! A service-level objective turns raw outcomes into a judgement:
//! "99% of requests answer under 50 ms over any 1 h window" or
//! "99.9% of requests are non-errors". The interesting signal is not
//! the instantaneous error rate but the **burn rate** — how fast the
//! window's error budget is being consumed, where burn 1.0 spends
//! exactly the budget over the window and burn 10 exhausts it ten
//! times over. Following the Google SRE workbook, an alert fires
//! only when *both* a fast window (seconds–minutes, for reaction
//! time) and a slow window (the guard against one bad second paging
//! a human) exceed the threshold, and clears with hysteresis once
//! both fall below a lower one — so a firing alert cannot flap on
//! the boundary.
//!
//! Everything is deterministic under test: outcomes land in
//! per-second stamped ring buckets and the whole engine is driven
//! through `*_at(now_secs)` entry points; production wrappers derive
//! `now_secs` from a process epoch. Transitions are edge-counted
//! (`fired_total` / `cleared_total`), which is what lets the chaos
//! gate assert an *exact* fire→clear cycle rather than sampling a
//! racy boolean.
//!
//! The spec grammar (CLI `--slo` flag and `NTR_SLOS` env, split on
//! `;`):
//!
//! ```text
//! [NAME=]availability:OBJECTIVE:WINDOW[:FAST[:SLOW]]
//! [NAME=]latency:OBJECTIVE:THRESHOLD:WINDOW[:FAST[:SLOW]]
//! ```
//!
//! Durations take `s`/`m`/`h` suffixes, latency thresholds
//! `us`/`ms`/`s`; `OBJECTIVE` is a percentage. Omitted windows
//! default to fast = window/60 and slow = window/12 (the workbook's
//! 1 h → 1 m / 5 m shape), floored at one second.

use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;
use crate::metrics::{Gauge, MetricsRegistry};
use crate::{log_info, log_warn};

/// What a request must do to count as "good".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloKind {
    /// Good iff the request succeeded and answered within the
    /// threshold.
    Latency {
        /// Inclusive latency bound in microseconds.
        threshold_us: u64,
    },
    /// Good iff the request succeeded (outcome "ok").
    Availability,
}

/// One parsed objective.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Display name (defaults to a slug derived from the fields).
    pub name: String,
    /// Goodness criterion.
    pub kind: SloKind,
    /// Target percentage of good requests, e.g. `99.9`.
    pub objective_pct: f64,
    /// Budget window in seconds.
    pub window_secs: u64,
    /// Fast burn-rate window in seconds.
    pub fast_secs: u64,
    /// Slow burn-rate window in seconds.
    pub slow_secs: u64,
}

/// Fire/clear thresholds on the burn rate. Firing requires *both*
/// windows above `fire`; clearing requires both below `clear` —
/// hysteresis, so the boundary cannot flap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnRule {
    /// Burn rate at or above which both windows must sit to fire.
    pub fire: f64,
    /// Burn rate below which both windows must fall to clear.
    pub clear: f64,
}

impl Default for BurnRule {
    /// The workbook's page-worthy rule: burning a month of budget in
    /// ~3 days (rate 10), clearing at half that.
    fn default() -> Self {
        Self {
            fire: 10.0,
            clear: 5.0,
        }
    }
}

fn parse_duration_secs(s: &str) -> Option<u64> {
    let (num, mult) = match s.strip_suffix('h') {
        Some(n) => (n, 3600),
        None => match s.strip_suffix('m') {
            Some(n) => (n, 60),
            None => (s.strip_suffix('s').unwrap_or(s), 1),
        },
    };
    let n: u64 = num.parse().ok()?;
    (n > 0).then_some(n * mult)
}

fn parse_threshold_us(s: &str) -> Option<u64> {
    // Order matters: "ms" ends in "s", "us" too.
    if let Some(n) = s.strip_suffix("us") {
        return n.parse().ok().filter(|&v| v > 0);
    }
    if let Some(n) = s.strip_suffix("ms") {
        return n.parse::<u64>().ok().filter(|&v| v > 0)?.checked_mul(1_000);
    }
    let n = s.strip_suffix('s').unwrap_or(s);
    n.parse::<u64>()
        .ok()
        .filter(|&v| v > 0)?
        .checked_mul(1_000_000)
}

impl SloSpec {
    /// Parses one spec in the module grammar.
    ///
    /// # Errors
    /// A description of the offending field.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        let (name, body) = match spec.split_once('=') {
            Some((n, b)) if !n.trim().is_empty() => (Some(n.trim().to_owned()), b.trim()),
            Some(_) => return Err(format!("empty name in SLO spec {spec:?}")),
            None => (None, spec),
        };
        let parts: Vec<&str> = body.split(':').collect();
        let err = |what: &str| format!("{what} in SLO spec {spec:?}");
        let objective = |s: &str| -> Result<f64, String> {
            let pct: f64 = s.parse().map_err(|_| err("unparseable objective"))?;
            if pct <= 0.0 || pct >= 100.0 {
                return Err(err("objective must be in (0, 100)"));
            }
            Ok(pct)
        };
        let windows = |rest: &[&str], window: u64| -> Result<(u64, u64), String> {
            let fast = match rest.first() {
                Some(s) => parse_duration_secs(s).ok_or_else(|| err("unparseable fast window"))?,
                None => (window / 60).max(1),
            };
            let slow = match rest.get(1) {
                Some(s) => parse_duration_secs(s).ok_or_else(|| err("unparseable slow window"))?,
                None => (window / 12).max(1),
            };
            if fast > slow || slow > window {
                return Err(err("windows must satisfy fast <= slow <= window"));
            }
            Ok((fast, slow))
        };
        let (kind, objective_pct, window_secs, fast_secs, slow_secs, default_name) =
            match parts.as_slice() {
                ["availability", obj, window, rest @ ..] if rest.len() <= 2 => {
                    let pct = objective(obj)?;
                    let w = parse_duration_secs(window).ok_or_else(|| err("unparseable window"))?;
                    let (fast, slow) = windows(rest, w)?;
                    (
                        SloKind::Availability,
                        pct,
                        w,
                        fast,
                        slow,
                        format!("availability-{obj}"),
                    )
                }
                ["latency", obj, threshold, window, rest @ ..] if rest.len() <= 2 => {
                    let pct = objective(obj)?;
                    let threshold_us = parse_threshold_us(threshold)
                        .ok_or_else(|| err("unparseable threshold"))?;
                    let w = parse_duration_secs(window).ok_or_else(|| err("unparseable window"))?;
                    let (fast, slow) = windows(rest, w)?;
                    (
                        SloKind::Latency { threshold_us },
                        pct,
                        w,
                        fast,
                        slow,
                        format!("latency-{obj}-{threshold}"),
                    )
                }
                _ => {
                    return Err(err(
                        "expected availability:OBJ:WINDOW or latency:OBJ:THRESHOLD:WINDOW",
                    ))
                }
            };
        Ok(Self {
            name: name.unwrap_or(default_name),
            kind,
            objective_pct,
            window_secs,
            fast_secs,
            slow_secs,
        })
    }

    /// Parses a `;`-separated list (empty segments skipped).
    ///
    /// # Errors
    /// The first segment that fails [`parse`](Self::parse).
    pub fn parse_list(list: &str) -> Result<Vec<Self>, String> {
        list.split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Self::parse)
            .collect()
    }

    /// Metric-name-safe version of the SLO name.
    #[must_use]
    pub fn slug(&self) -> String {
        self.name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect()
    }
}

/// The objectives a server runs with unless configured otherwise.
#[must_use]
pub fn default_slos() -> Vec<SloSpec> {
    SloSpec::parse_list("latency:99:50ms:1h;availability:99.9:1h")
        .expect("the built-in SLO list must parse")
}

#[derive(Clone, Copy, Default)]
struct Bucket {
    /// Second index + 1; 0 = never written.
    stamp: u64,
    good: u64,
    total: u64,
}

struct SloState {
    spec: SloSpec,
    /// One bucket per second, ring of `window_secs`.
    buckets: Vec<Bucket>,
    firing: bool,
    fired_total: u64,
    cleared_total: u64,
    last_fast_burn: f64,
    last_slow_burn: f64,
    burn_gauge: Option<std::sync::Arc<Gauge>>,
}

impl SloState {
    fn record(&mut self, now_secs: u64, good: bool) {
        let idx = (now_secs % self.buckets.len() as u64) as usize;
        let bucket = &mut self.buckets[idx];
        if bucket.stamp != now_secs + 1 {
            *bucket = Bucket {
                stamp: now_secs + 1,
                good: 0,
                total: 0,
            };
        }
        bucket.total += 1;
        bucket.good += u64::from(good);
    }

    /// (good, total) over the trailing `window` seconds ending at
    /// `now_secs` inclusive.
    fn window_counts(&self, now_secs: u64, window: u64) -> (u64, u64) {
        let oldest = (now_secs + 1).saturating_sub(window);
        let (mut good, mut total) = (0, 0);
        for b in &self.buckets {
            if b.stamp > oldest && b.stamp <= now_secs + 1 {
                good += b.good;
                total += b.total;
            }
        }
        (good, total)
    }

    /// Burn rate over a window: bad-fraction divided by the budget
    /// fraction `1 - objective`. 0.0 with no traffic.
    fn burn_rate(&self, now_secs: u64, window: u64) -> f64 {
        let (good, total) = self.window_counts(now_secs, window);
        if total == 0 {
            return 0.0;
        }
        let bad_frac = (total - good) as f64 / total as f64;
        let budget = 1.0 - self.spec.objective_pct / 100.0;
        bad_frac / budget
    }
}

/// Transition edges produced by one [`SloEngine::evaluate_at`] pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Transition {
    /// The named alert started firing.
    Fired(String),
    /// The named alert stopped firing.
    Cleared(String),
}

/// Point-in-time view of one alert, for `/alertz` and the statusz page.
#[derive(Clone, Debug)]
pub struct AlertSnapshot {
    /// SLO name.
    pub name: String,
    /// Goodness criterion.
    pub kind: SloKind,
    /// Target percentage.
    pub objective_pct: f64,
    /// Budget window in seconds.
    pub window_secs: u64,
    /// Burn rate over the fast window at the last evaluation.
    pub fast_burn: f64,
    /// Burn rate over the slow window at the last evaluation.
    pub slow_burn: f64,
    /// Is the alert currently firing?
    pub firing: bool,
    /// Edge count of fire transitions.
    pub fired_total: u64,
    /// Edge count of clear transitions.
    pub cleared_total: u64,
    /// Good requests in the budget window.
    pub good: u64,
    /// Total requests in the budget window.
    pub total: u64,
}

/// Evaluates a set of SLOs over a stream of request outcomes.
pub struct SloEngine {
    rule: BurnRule,
    states: Mutex<Vec<SloState>>,
    firing_gauge: Mutex<Option<std::sync::Arc<Gauge>>>,
    epoch: Instant,
}

impl SloEngine {
    /// Builds an engine over `specs` with the given burn rule.
    #[must_use]
    pub fn new(specs: Vec<SloSpec>, rule: BurnRule) -> Self {
        let states = specs
            .into_iter()
            .map(|spec| SloState {
                buckets: vec![Bucket::default(); spec.window_secs.max(1) as usize],
                spec,
                firing: false,
                fired_total: 0,
                cleared_total: 0,
                last_fast_burn: 0.0,
                last_slow_burn: 0.0,
                burn_gauge: None,
            })
            .collect();
        Self {
            rule,
            states: Mutex::new(states),
            firing_gauge: Mutex::new(None),
            epoch: Instant::now(),
        }
    }

    /// Registers `ntr_slo_burn_rate_<slug>` per SLO (fast-window burn,
    /// rounded) and `ntr_alerts_firing` on `registry`.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        let mut states = self.states.lock().expect("slo engine poisoned");
        for state in states.iter_mut() {
            state.burn_gauge = Some(registry.gauge(
                &format!("ntr_slo_burn_rate_{}", state.spec.slug()),
                "fast-window error-budget burn rate of this SLO, rounded to the nearest integer",
            ));
        }
        *self.firing_gauge.lock().expect("slo engine poisoned") = Some(registry.gauge(
            "ntr_alerts_firing",
            "number of SLO burn-rate alerts currently firing",
        ));
    }

    /// Seconds since the engine was built.
    #[must_use]
    pub fn now_secs(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Records one request outcome at an explicit second.
    pub fn record_at(&self, now_secs: u64, ok: bool, latency_us: u64) {
        let mut states = self.states.lock().expect("slo engine poisoned");
        for state in states.iter_mut() {
            let good = match state.spec.kind {
                SloKind::Availability => ok,
                SloKind::Latency { threshold_us } => ok && latency_us <= threshold_us,
            };
            state.record(now_secs, good);
        }
    }

    /// Production wrapper for [`record_at`](Self::record_at).
    pub fn record(&self, ok: bool, latency_us: u64) {
        self.record_at(self.now_secs(), ok, latency_us);
    }

    /// Re-evaluates every alert at an explicit second, returning the
    /// transition edges (and logging each one).
    pub fn evaluate_at(&self, now_secs: u64) -> Vec<Transition> {
        let mut transitions = Vec::new();
        let mut firing = 0;
        let mut states = self.states.lock().expect("slo engine poisoned");
        for state in states.iter_mut() {
            let fast = state.burn_rate(now_secs, state.spec.fast_secs);
            let slow = state.burn_rate(now_secs, state.spec.slow_secs);
            state.last_fast_burn = fast;
            state.last_slow_burn = slow;
            if !state.firing && fast >= self.rule.fire && slow >= self.rule.fire {
                state.firing = true;
                state.fired_total += 1;
                log_warn!(
                    "SLO alert FIRING: {} burn fast={fast:.1} slow={slow:.1} (threshold {})",
                    state.spec.name,
                    self.rule.fire
                );
                transitions.push(Transition::Fired(state.spec.name.clone()));
            } else if state.firing && fast < self.rule.clear && slow < self.rule.clear {
                state.firing = false;
                state.cleared_total += 1;
                log_info!(
                    "SLO alert cleared: {} burn fast={fast:.1} slow={slow:.1} (threshold {})",
                    state.spec.name,
                    self.rule.clear
                );
                transitions.push(Transition::Cleared(state.spec.name.clone()));
            }
            firing += i64::from(state.firing);
            if let Some(gauge) = &state.burn_gauge {
                gauge.set(fast.round() as i64);
            }
        }
        if let Some(gauge) = self
            .firing_gauge
            .lock()
            .expect("slo engine poisoned")
            .as_ref()
        {
            gauge.set(firing);
        }
        transitions
    }

    /// Production wrapper for [`evaluate_at`](Self::evaluate_at).
    pub fn evaluate(&self) -> Vec<Transition> {
        self.evaluate_at(self.now_secs())
    }

    /// Snapshots every alert as of the last evaluation, with window
    /// counts recomputed at `now_secs`.
    #[must_use]
    pub fn snapshot_at(&self, now_secs: u64) -> Vec<AlertSnapshot> {
        let states = self.states.lock().expect("slo engine poisoned");
        states
            .iter()
            .map(|state| {
                let (good, total) = state.window_counts(now_secs, state.spec.window_secs);
                AlertSnapshot {
                    name: state.spec.name.clone(),
                    kind: state.spec.kind,
                    objective_pct: state.spec.objective_pct,
                    window_secs: state.spec.window_secs,
                    fast_burn: state.last_fast_burn,
                    slow_burn: state.last_slow_burn,
                    firing: state.firing,
                    fired_total: state.fired_total,
                    cleared_total: state.cleared_total,
                    good,
                    total,
                }
            })
            .collect()
    }

    /// [`snapshot_at`](Self::snapshot_at) against the engine's clock.
    #[must_use]
    pub fn snapshot(&self) -> Vec<AlertSnapshot> {
        self.snapshot_at(self.now_secs())
    }

    /// The wire answer for `{"op":"alerts"}` and `GET /alertz`.
    #[must_use]
    pub fn alerts_json_at(&self, now_secs: u64) -> Json {
        let snaps = self.snapshot_at(now_secs);
        let firing = snaps.iter().filter(|a| a.firing).count();
        let alerts = snaps
            .into_iter()
            .map(|a| {
                let kind = match a.kind {
                    SloKind::Availability => Json::str("availability"),
                    SloKind::Latency { .. } => Json::str("latency"),
                };
                let mut fields = vec![
                    ("name", Json::str(&a.name)),
                    ("kind", kind),
                    ("objective_pct", Json::Num(a.objective_pct)),
                    ("window_secs", Json::Num(a.window_secs as f64)),
                    ("fast_burn", Json::Num(a.fast_burn)),
                    ("slow_burn", Json::Num(a.slow_burn)),
                    ("firing", Json::Bool(a.firing)),
                    ("fired_total", Json::Num(a.fired_total as f64)),
                    ("cleared_total", Json::Num(a.cleared_total as f64)),
                    ("good", Json::Num(a.good as f64)),
                    ("total", Json::Num(a.total as f64)),
                ];
                if let SloKind::Latency { threshold_us } = a.kind {
                    fields.insert(2, ("threshold_us", Json::Num(threshold_us as f64)));
                }
                Json::obj(fields)
            })
            .collect::<Vec<_>>();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("op", Json::str("alerts")),
            ("firing", Json::Num(firing as f64)),
            ("alerts", Json::Arr(alerts)),
        ])
    }

    /// [`alerts_json_at`](Self::alerts_json_at) against the engine's
    /// clock.
    #[must_use]
    pub fn alerts_json(&self) -> Json {
        self.alerts_json_at(self.now_secs())
    }
}

/// Strict validator for [`SloEngine::alerts_json`] output — used by
/// tests, the CI smoke checker, and the loadgen chaos gate. Returns
/// the number of alerts.
///
/// # Errors
/// A description of the first malformed element.
pub fn check_alerts_json(text: &str) -> Result<usize, String> {
    let json = Json::parse(text).map_err(|e| format!("unparseable alerts answer: {e}"))?;
    if json.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("alerts answer not ok: {json}"));
    }
    if json.get("op").and_then(Json::as_str) != Some("alerts") {
        return Err(format!("op is not \"alerts\": {json}"));
    }
    let firing = json
        .get("firing")
        .and_then(Json::as_f64)
        .ok_or("missing firing count")?;
    let alerts = json
        .get("alerts")
        .and_then(Json::as_arr)
        .ok_or("missing alerts array")?;
    let mut counted_firing = 0.0;
    for (i, a) in alerts.iter().enumerate() {
        if a.get("name")
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("alerts[{i}].name missing or empty"));
        }
        match a.get("kind").and_then(Json::as_str) {
            Some("availability") => {}
            Some("latency") => {
                if a.get("threshold_us").and_then(Json::as_f64).is_none() {
                    return Err(format!("alerts[{i}] latency kind without threshold_us"));
                }
            }
            _ => return Err(format!("alerts[{i}].kind is not availability|latency")),
        }
        for key in [
            "objective_pct",
            "window_secs",
            "fast_burn",
            "slow_burn",
            "fired_total",
            "cleared_total",
            "good",
            "total",
        ] {
            if a.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("alerts[{i}].{key} missing or not a number"));
            }
        }
        let good = a.get("good").and_then(Json::as_f64).unwrap_or(0.0);
        let total = a.get("total").and_then(Json::as_f64).unwrap_or(0.0);
        if good > total {
            return Err(format!("alerts[{i}] has good {good} > total {total}"));
        }
        match a.get("firing").and_then(Json::as_bool) {
            Some(f) => counted_firing += f64::from(u8::from(f)),
            None => return Err(format!("alerts[{i}].firing missing or not a bool")),
        }
    }
    if (counted_firing - firing).abs() > f64::EPSILON {
        return Err(format!(
            "firing count {firing} disagrees with per-alert flags {counted_firing}"
        ));
    }
    Ok(alerts.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avail_spec(window: u64, fast: u64, slow: u64) -> SloSpec {
        SloSpec {
            name: "test-availability".to_owned(),
            kind: SloKind::Availability,
            objective_pct: 99.0,
            window_secs: window,
            fast_secs: fast,
            slow_secs: slow,
        }
    }

    #[test]
    fn grammar_parses_both_kinds_with_defaults() {
        let s = SloSpec::parse("availability:99.9:1h").unwrap();
        assert_eq!(s.kind, SloKind::Availability);
        assert!((s.objective_pct - 99.9).abs() < 1e-9);
        assert_eq!((s.window_secs, s.fast_secs, s.slow_secs), (3600, 60, 300));
        assert_eq!(s.name, "availability-99.9");

        let s = SloSpec::parse("fast=latency:99:50ms:10m:30s:2m").unwrap();
        assert_eq!(
            s.kind,
            SloKind::Latency {
                threshold_us: 50_000
            }
        );
        assert_eq!((s.window_secs, s.fast_secs, s.slow_secs), (600, 30, 120));
        assert_eq!(s.name, "fast");
        assert_eq!(s.slug(), "fast");

        let list = SloSpec::parse_list(" availability:99:60s:2s:8s ; ;latency:95:2s:5m").unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(
            list[1].kind,
            SloKind::Latency {
                threshold_us: 2_000_000
            }
        );
        assert!(!default_slos().is_empty());
    }

    #[test]
    fn grammar_rejects_malformed_specs() {
        for bad in [
            "",
            "availability",
            "availability:0:1h",
            "availability:100:1h",
            "availability:99:0s",
            "availability:99:1h:10m:5m", // fast > slow
            "availability:99:1m:30s:2m", // slow > window
            "latency:99:1h",             // threshold missing
            "latency:99:xx:1h",
            "=availability:99:1h",
            "durations:99:1x",
        ] {
            assert!(SloSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let engine = SloEngine::new(vec![avail_spec(60, 5, 20)], BurnRule::default());
        // 10 requests at t=10, 2 bad: bad_frac 0.2, budget 0.01 → burn 20.
        for i in 0..10 {
            engine.record_at(10, i >= 2, 0);
        }
        let snap = &engine.snapshot_at(10)[0];
        assert_eq!((snap.good, snap.total), (8, 10));
        engine.evaluate_at(10);
        let snap = &engine.snapshot_at(10)[0];
        assert!((snap.fast_burn - 20.0).abs() < 1e-9);
        assert!((snap.slow_burn - 20.0).abs() < 1e-9);
    }

    #[test]
    fn alert_needs_both_windows_to_fire_and_clears_with_hysteresis() {
        let engine = SloEngine::new(vec![avail_spec(60, 2, 20)], BurnRule::default());
        // Seconds 0..9: healthy traffic fills the slow window.
        for t in 0..10 {
            for _ in 0..10 {
                engine.record_at(t, true, 0);
            }
            assert!(engine.evaluate_at(t).is_empty());
        }
        // Second 10: total failure. The fast window burns hot at once,
        // but the 20 s slow window holds 100 good / 10 bad → burn 9.1,
        // still under the fire threshold: no alert on one bad second.
        for _ in 0..10 {
            engine.record_at(10, false, 0);
        }
        assert!(engine.evaluate_at(10).is_empty());
        let snap = &engine.snapshot_at(10)[0];
        assert!((snap.fast_burn - 50.0).abs() < 1e-9); // seconds 9..10
        assert!(snap.slow_burn < 10.0, "slow window must lag one bad second");
        // Second 11: still failing → slow burn 100/120 bad_frac … 16.7.
        for _ in 0..10 {
            engine.record_at(11, false, 0);
        }
        let fired = engine.evaluate_at(11);
        assert_eq!(
            fired,
            vec![Transition::Fired("test-availability".to_owned())]
        );
        let snap = &engine.snapshot_at(11)[0];
        assert!(snap.firing);
        assert_eq!((snap.fired_total, snap.cleared_total), (1, 0));
        // Re-evaluating while hot adds no new edge.
        assert!(engine.evaluate_at(11).is_empty());
        // Healthy again: the fast window empties of bad quickly, but
        // the alert holds until the slow window is also below clear.
        let mut cleared_at = None;
        for t in 12..60 {
            for _ in 0..10 {
                engine.record_at(t, true, 0);
            }
            let edges = engine.evaluate_at(t);
            let snap = &engine.snapshot_at(t)[0];
            if snap.firing {
                assert!(edges.is_empty());
            } else {
                assert_eq!(
                    edges,
                    vec![Transition::Cleared("test-availability".to_owned())]
                );
                cleared_at = Some(t);
                break;
            }
        }
        let cleared_at = cleared_at.expect("alert never cleared");
        // Hysteresis: the fast burn is < clear by t=14, but the 20 s
        // slow window remembers the bad seconds until they slide out.
        // The slow burn sits right on 5.0 at t=30 (which side depends
        // on the float rounding of the 1% budget) and is cleanly below
        // at t=31.
        assert!(
            (30..=31).contains(&cleared_at),
            "hysteresis window mis-sized: cleared at t={cleared_at}"
        );
        let snap = &engine.snapshot_at(cleared_at)[0];
        assert_eq!((snap.fired_total, snap.cleared_total), (1, 1));
        assert!(engine.evaluate_at(cleared_at + 1).is_empty());
    }

    #[test]
    fn latency_slo_counts_slow_and_failed_requests_as_bad() {
        let spec = SloSpec {
            name: "lat".to_owned(),
            kind: SloKind::Latency {
                threshold_us: 1_000,
            },
            objective_pct: 50.0,
            window_secs: 60,
            fast_secs: 2,
            slow_secs: 4,
        };
        let engine = SloEngine::new(vec![spec], BurnRule::default());
        engine.record_at(5, true, 500); // good
        engine.record_at(5, true, 1_000); // good (inclusive bound)
        engine.record_at(5, true, 1_001); // bad: too slow
        engine.record_at(5, false, 10); // bad: failed, however fast
        let snap = &engine.snapshot_at(5)[0];
        assert_eq!((snap.good, snap.total), (2, 4));
    }

    #[test]
    fn empty_windows_burn_zero_and_old_buckets_expire() {
        let engine = SloEngine::new(vec![avail_spec(10, 2, 5)], BurnRule::default());
        assert!(engine.evaluate_at(0).is_empty());
        let snap = &engine.snapshot_at(0)[0];
        assert_eq!(snap.total, 0);
        assert!((snap.fast_burn).abs() < 1e-9);
        engine.record_at(1, false, 0);
        // 30 > 1 + 10: the failure has aged out of every window.
        let snap = &engine.snapshot_at(30)[0];
        assert_eq!(snap.total, 0);
        assert!(engine.evaluate_at(30).is_empty());
    }

    #[test]
    fn alerts_json_validates_and_carries_the_counters() {
        let engine = SloEngine::new(default_slos(), BurnRule::default());
        engine.record_at(3, true, 10);
        engine.record_at(3, false, 10);
        engine.evaluate_at(3);
        let line = engine.alerts_json_at(3).to_line();
        assert_eq!(check_alerts_json(&line).unwrap(), 2);
        assert!(check_alerts_json("{\"ok\":true,\"op\":\"alerts\"}").is_err());
        assert!(check_alerts_json("nope").is_err());
    }

    #[test]
    fn registered_gauges_track_evaluation() {
        let registry = MetricsRegistry::new();
        let engine = SloEngine::new(vec![avail_spec(60, 2, 10)], BurnRule::default());
        engine.register_metrics(&registry);
        for t in 0..12 {
            for _ in 0..10 {
                engine.record_at(t, t < 2, 0);
            }
            engine.evaluate_at(t);
        }
        let firing = registry.gauge("ntr_alerts_firing", "");
        assert_eq!(firing.get(), 1);
        let burn = registry.gauge("ntr_slo_burn_rate_test_availability", "");
        assert_eq!(burn.get(), 100);
    }
}
