//! `ntr-obs-check`: pipe an observability surface into stdin, name its
//! format, and get a strict validation verdict — exit 0 with a short
//! count on success, exit 1 with the first defect on failure.
//!
//! ```text
//! curl -fsS http://127.0.0.1:9184/metrics  | ntr-obs-check exposition
//! curl -fsS http://127.0.0.1:9184/journal  | ntr-obs-check journal
//! curl -fsS 'http://127.0.0.1:9184/tsdb?metric=m&res=1' | ntr-obs-check tsdb
//! curl -fsS http://127.0.0.1:9184/alertz   | ntr-obs-check alerts
//! curl -fsS http://127.0.0.1:9184/profilez | ntr-obs-check folded
//! ```
//!
//! The checkers are the same in-repo functions the unit tests use
//! ([`prometheus::check_exposition`], [`journal::check_journal_lines`],
//! [`tsdb::check_query_json`], [`slo::check_alerts_json`],
//! [`profile::check_folded`]) — CI validates shapes with the library's
//! own contract, not a shell regex.

use std::io::Read;
use std::process::ExitCode;

use ntr_obs::{journal, profile, prometheus, slo, tsdb};

const USAGE: &str =
    "usage: ntr-obs-check <exposition|journal|tsdb|alerts|folded>  (input on stdin)";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(format), None) = (args.next(), args.next()) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("ntr-obs-check: reading stdin failed: {e}");
        return ExitCode::FAILURE;
    }
    let verdict = match format.as_str() {
        "exposition" => prometheus::check_exposition(&input).map(|()| {
            let families = input.lines().filter(|l| l.starts_with("# TYPE ")).count();
            format!("ok: {families} metric families")
        }),
        "journal" => journal::check_journal_lines(&input).map(|c| {
            format!(
                "ok: {} request + {} iteration lines",
                c.requests, c.iterations
            )
        }),
        "tsdb" => {
            tsdb::check_query_json(input.trim()).map(|n| format!("ok: {n} points or series names"))
        }
        "alerts" => slo::check_alerts_json(input.trim()).map(|n| format!("ok: {n} alerts")),
        "folded" => profile::check_folded(&input).map(|n| format!("ok: {n} folded stack lines")),
        other => {
            eprintln!("ntr-obs-check: unknown format {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match verdict {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(defect) => {
            eprintln!("ntr-obs-check: {format} input is malformed: {defect}");
            ExitCode::FAILURE
        }
    }
}
