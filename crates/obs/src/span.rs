//! Span-based tracing: a thread-local span stack with monotonic
//! timestamps and per-request trace ids.
//!
//! A *span* is one timed region of code, opened with [`span()`] and
//! closed when the returned guard drops. Spans nest lexically: the
//! thread-local depth counter records how deep each span sat on its
//! thread's stack, and the monotonic `start`/`duration` pair makes the
//! nesting reconstructible from timestamps alone (what the
//! [`chrome`](crate::chrome) exporter relies on).
//!
//! **Cost when disabled** (the default): one `Ordering::Relaxed` atomic
//! load per [`span()`] call — no clock read, no allocation. This is the
//! property the `crates/bench` overhead benchmark pins down.
//!
//! **Trace ids** correlate spans and log lines with the request that
//! caused them: a transport assigns one id per request
//! ([`next_trace_id`]) and wraps the request's execution in
//! [`with_trace_id`]; every span and log line produced on that thread
//! while the guard lives carries the id.
//!
//! Records accumulate in a global collector ([`take_spans`] drains it),
//! capped at [`MAX_RECORDED_SPANS`] so a forgotten `set_enabled(true)`
//! cannot grow memory without bound; overflow is counted in
//! [`dropped_spans`].
//!
//! **Per-thread capture** ([`capture`]) is the second consumer: a
//! server worker opens a capture guard around one request, and every
//! span the thread closes while the guard lives is *also* buffered
//! thread-locally (capped at [`MAX_CAPTURED_SPANS`]), independent of
//! the global switch. The journal's tail-sampled exemplars are built
//! from these buffers. Both switches fold into one atomic word
//! ([`STATE`]: bit 0 = global, upper bits = live capture guards), so
//! the fully-disabled fast path is still exactly one relaxed load.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Upper bound on buffered span records (~48 MB worst case).
pub const MAX_RECORDED_SPANS: usize = 1 << 20;

/// Upper bound on spans buffered by one capture guard (bounds exemplar
/// size; a request past the cap keeps its first spans).
pub const MAX_CAPTURED_SPANS: usize = 4096;

/// Bit 0: global collection on. Each live [`CaptureGuard`] adds
/// [`CAPTURE_UNIT`]. Zero means "nothing to do" — the one-relaxed-load
/// fast path the overhead benchmark pins down.
static STATE: AtomicU32 = AtomicU32::new(0);
const GLOBAL_BIT: u32 = 1;
const CAPTURE_UNIT: u32 = 2;

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static COLLECTOR: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static TRACE_ID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u16> = const { Cell::new(0) };
    /// `Some` while a capture guard is live on this thread.
    static CAPTURE: RefCell<Option<Vec<SpanRecord>>> = const { RefCell::new(None) };
}

/// One completed span, timestamped in nanoseconds since the trace epoch
/// (the first moment tracing was enabled in this process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static, from the instrumentation site).
    pub name: &'static str,
    /// Trace id active on the thread when the span closed (0 = none).
    pub trace: u64,
    /// Small stable id of the recording thread.
    pub thread: u64,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: u16,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Turns span collection on or off (process-global).
pub fn set_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
        STATE.fetch_or(GLOBAL_BIT, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!GLOBAL_BIT, Ordering::Relaxed);
    }
}

/// Is span collection currently on?
#[inline]
#[must_use]
pub fn enabled() -> bool {
    STATE.load(Ordering::Relaxed) & GLOBAL_BIT != 0
}

/// Starts buffering this thread's spans until the guard is dropped or
/// [`finish`](CaptureGuard::finish)ed. Not nestable: a second guard on
/// the same thread restarts the buffer. The spans double-report — a
/// capture does not remove them from the global collector when that is
/// also enabled.
#[must_use]
pub fn capture() -> CaptureGuard {
    EPOCH.get_or_init(Instant::now);
    STATE.fetch_add(CAPTURE_UNIT, Ordering::Relaxed);
    CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
    CaptureGuard { finished: false }
}

/// Active per-thread span capture; see [`capture`].
#[derive(Debug)]
pub struct CaptureGuard {
    finished: bool,
}

impl CaptureGuard {
    /// Ends the capture and returns the buffered spans.
    #[must_use]
    pub fn finish(mut self) -> Vec<SpanRecord> {
        self.finished = true;
        self.teardown()
    }

    fn teardown(&self) -> Vec<SpanRecord> {
        let spans = CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default();
        STATE.fetch_sub(CAPTURE_UNIT, Ordering::Relaxed);
        spans
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.teardown();
        }
    }
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        let mut v = id.get();
        if v == 0 {
            v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            id.set(v);
        }
        v
    })
}

/// A fresh process-unique trace id (never 0).
#[must_use]
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// The trace id active on this thread (0 = none).
#[must_use]
pub fn current_trace_id() -> u64 {
    TRACE_ID.with(Cell::get)
}

/// Marks this thread as working on trace `id` until the guard drops
/// (the previous id is restored, so nested scopes compose).
#[must_use]
pub fn with_trace_id(id: u64) -> TraceGuard {
    TraceGuard {
        prev: TRACE_ID.with(|t| t.replace(id)),
    }
}

/// Restores the thread's previous trace id on drop.
#[derive(Debug)]
pub struct TraceGuard {
    prev: u64,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        TRACE_ID.with(|t| t.set(self.prev));
    }
}

/// An open span; the region ends (and the record is emitted) when this
/// guard drops. A `None` payload means tracing was disabled at open.
#[must_use = "a span measures the region until the guard drops"]
#[derive(Debug)]
pub struct Span(Option<LiveSpan>);

#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    start: Instant,
    start_ns: u64,
    depth: u16,
    /// Destined for the global collector.
    global: bool,
}

/// Opens a span named `name`. When tracing is disabled and no capture
/// guard is live anywhere, this is one relaxed atomic load and returns
/// an inert guard.
#[inline]
pub fn span(name: &'static str) -> Span {
    let state = STATE.load(Ordering::Relaxed);
    if state == 0 {
        return Span(None);
    }
    let global = state & GLOBAL_BIT != 0;
    // A capture guard on *some* thread forces this (cheap) thread-local
    // check; only the capturing thread pays for the record itself.
    let capturing = state >= CAPTURE_UNIT
        && CAPTURE.with(|c| {
            c.borrow()
                .as_ref()
                .is_some_and(|buf| buf.len() < MAX_CAPTURED_SPANS)
        });
    if !global && !capturing {
        return Span(None);
    }
    let epoch = *EPOCH.get_or_init(Instant::now);
    let start = Instant::now();
    let start_ns = u64::try_from(start.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX);
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v.saturating_add(1));
        v
    });
    Span(Some(LiveSpan {
        name,
        start,
        start_ns,
        depth,
        global,
    }))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.0.take() else { return };
        let dur_ns = u64::try_from(live.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let record = SpanRecord {
            name: live.name,
            trace: current_trace_id(),
            thread: thread_id(),
            depth: live.depth,
            start_ns: live.start_ns,
            dur_ns,
        };
        CAPTURE.with(|c| {
            if let Some(buf) = c.borrow_mut().as_mut() {
                if buf.len() < MAX_CAPTURED_SPANS {
                    buf.push(record);
                }
            }
        });
        if live.global {
            let mut collector = COLLECTOR.lock().expect("span collector poisoned");
            if collector.len() < MAX_RECORDED_SPANS {
                collector.push(record);
            } else {
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Drains and returns every span recorded so far.
#[must_use]
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *COLLECTOR.lock().expect("span collector poisoned"))
}

/// Spans lost to the [`MAX_RECORDED_SPANS`] cap since process start.
#[must_use]
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The span tests toggle the process-global collector, so they run
    /// under one lock to avoid draining each other's records.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let before = take_spans().len();
        {
            let _s = span("ignored");
        }
        assert_eq!(take_spans().len().min(before), 0);
    }

    #[test]
    fn nested_spans_record_depth_and_containment() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _drain = take_spans();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                std::hint::black_box(1 + 1);
            }
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        // Drop order: inner closes first.
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.thread, outer.thread);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn trace_ids_nest_and_restore() {
        let _guard = TEST_LOCK.lock().unwrap();
        assert_eq!(current_trace_id(), 0);
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        {
            let _ga = with_trace_id(a);
            assert_eq!(current_trace_id(), a);
            {
                let _gb = with_trace_id(b);
                assert_eq!(current_trace_id(), b);
            }
            assert_eq!(current_trace_id(), a);
        }
        assert_eq!(current_trace_id(), 0);
    }

    #[test]
    fn capture_buffers_spans_without_global_collection() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let _drain = take_spans();
        let cap = capture();
        {
            let _a = span("captured.outer");
            let _b = span("captured.inner");
        }
        let spans = cap.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "captured.inner");
        // Nothing leaked into the global collector, and dropping the
        // guard restored the one-load fast path.
        assert!(take_spans().is_empty());
        {
            let _c = span("after");
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn capture_and_global_collection_compose() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _drain = take_spans();
        let cap = capture();
        {
            let _s = span("both");
        }
        let captured = cap.finish();
        set_enabled(false);
        let global = take_spans();
        assert_eq!(captured.len(), 1);
        assert_eq!(global.len(), 1);
        assert_eq!(captured[0], global[0]);
    }

    #[test]
    fn capture_is_thread_local() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let cap = capture();
        std::thread::spawn(|| {
            let _s = span("other-thread");
        })
        .join()
        .unwrap();
        assert!(cap.finish().is_empty());
    }

    #[test]
    fn spans_carry_the_active_trace_id() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _drain = take_spans();
        let id = next_trace_id();
        {
            let _g = with_trace_id(id);
            let _s = span("traced");
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace, id);
    }
}
