//! Span-based tracing: a thread-local span stack with monotonic
//! timestamps and per-request trace ids.
//!
//! A *span* is one timed region of code, opened with [`span()`] and
//! closed when the returned guard drops. Spans nest lexically: the
//! thread-local depth counter records how deep each span sat on its
//! thread's stack, and the monotonic `start`/`duration` pair makes the
//! nesting reconstructible from timestamps alone (what the
//! [`chrome`](crate::chrome) exporter relies on).
//!
//! **Cost when disabled** (the default): one `Ordering::Relaxed` atomic
//! load per [`span()`] call — no clock read, no allocation. This is the
//! property the `crates/bench` overhead benchmark pins down.
//!
//! **Trace ids** correlate spans and log lines with the request that
//! caused them: a transport assigns one id per request
//! ([`next_trace_id`]) and wraps the request's execution in
//! [`with_trace_id`]; every span and log line produced on that thread
//! while the guard lives carries the id.
//!
//! Records accumulate in a global collector ([`take_spans`] drains it),
//! capped at [`MAX_RECORDED_SPANS`] so a forgotten `set_enabled(true)`
//! cannot grow memory without bound; overflow is counted in
//! [`dropped_spans`].
//!
//! **Per-thread capture** ([`capture`]) is the second consumer: a
//! server worker opens a capture guard around one request, and every
//! span the thread closes while the guard lives is *also* buffered
//! thread-locally (capped at [`MAX_CAPTURED_SPANS`]), independent of
//! the global switch. The journal's tail-sampled exemplars are built
//! from these buffers. All switches fold into one atomic word
//! ([`STATE`]: bit 0 = global, bit 1 = sampling profiler, upper bits =
//! live capture guards), so the fully-disabled fast path is still
//! exactly one relaxed load.
//!
//! **The live stack** ([`LiveStack`]) is the third consumer: when
//! sampling is on ([`set_sampling`]), every thread that opens spans
//! maintains a fixed-depth stack of the *currently open* span names,
//! readable lock-free by the sampling profiler's background thread
//! ([`crate::sampler`]). Each stack slot is a per-slot seqlock over the
//! `(ptr, len)` pair of a `&'static str`: the owning thread is the only
//! writer, and a reader that observes an unchanged even sequence number
//! on both sides of its loads has read a consistent pair — a torn
//! pointer/length combination is impossible, which is what makes the
//! `unsafe` reconstruction of the `&'static str` sound.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{
    fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Upper bound on buffered span records (~48 MB worst case).
pub const MAX_RECORDED_SPANS: usize = 1 << 20;

/// Upper bound on spans buffered by one capture guard (bounds exemplar
/// size; a request past the cap keeps its first spans).
pub const MAX_CAPTURED_SPANS: usize = 4096;

/// Bit 0: global collection on. Bit 1: the sampling profiler wants
/// live stacks maintained. Each live [`CaptureGuard`] adds
/// [`CAPTURE_UNIT`]. Zero means "nothing to do" — the one-relaxed-load
/// fast path the overhead benchmark pins down.
static STATE: AtomicU32 = AtomicU32::new(0);
const GLOBAL_BIT: u32 = 1;
const SAMPLER_BIT: u32 = 2;
const CAPTURE_UNIT: u32 = 4;

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static COLLECTOR: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static TRACE_ID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u16> = const { Cell::new(0) };
    /// `Some` while a capture guard is live on this thread.
    static CAPTURE: RefCell<Option<Vec<SpanRecord>>> = const { RefCell::new(None) };
}

/// One completed span, timestamped in nanoseconds since the trace epoch
/// (the first moment tracing was enabled in this process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static, from the instrumentation site).
    pub name: &'static str,
    /// Trace id active on the thread when the span closed (0 = none).
    pub trace: u64,
    /// Small stable id of the recording thread.
    pub thread: u64,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: u16,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Depth cap of the lock-free live stack each sampled thread maintains.
/// Spans opened deeper than this still record normally — they just do
/// not appear in sampled stacks.
pub const MAX_LIVE_DEPTH: usize = 64;

/// One slot of a [`LiveStack`]: a single-writer seqlock over the
/// `(ptr, len)` pair of a `&'static str` span name. The owning thread
/// bumps `seq` to odd, stores the pair, bumps `seq` to even; a reader
/// that sees the same even `seq` on both sides of its pair loads has a
/// consistent name.
struct LiveSlot {
    seq: AtomicU32,
    ptr: AtomicPtr<u8>,
    len: AtomicUsize,
}

impl LiveSlot {
    fn new() -> Self {
        Self {
            seq: AtomicU32::new(0),
            ptr: AtomicPtr::new(std::ptr::null_mut()),
            len: AtomicUsize::new(0),
        }
    }
}

/// The per-thread stack of currently open span names, maintained by
/// the owning thread on span open/close and read lock-free by the
/// sampling profiler's background thread (see [`crate::sampler`]).
///
/// Never freed: stacks are leaked once per OS thread that ever opened a
/// span while sampling was on, parked on a free list when the thread
/// exits, and reused by later threads — bounded by the process's peak
/// thread count, a few KB each.
pub struct LiveStack {
    in_use: AtomicBool,
    depth: AtomicUsize,
    slots: [LiveSlot; MAX_LIVE_DEPTH],
}

impl LiveStack {
    fn new() -> Self {
        Self {
            in_use: AtomicBool::new(false),
            depth: AtomicUsize::new(0),
            slots: std::array::from_fn(|_| LiveSlot::new()),
        }
    }

    /// Pushes `name` (owning thread only).
    fn push(&self, name: &'static str) {
        let d = self.depth.load(Ordering::Relaxed);
        if d < MAX_LIVE_DEPTH {
            let slot = &self.slots[d];
            // Seqlock write: odd seq marks the pair as in flux. The
            // release fence orders the data stores after the odd store
            // from a reader's perspective; the final release store
            // publishes the even seq after the data.
            let seq = slot.seq.load(Ordering::Relaxed);
            slot.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
            fence(Ordering::Release);
            slot.ptr.store(name.as_ptr().cast_mut(), Ordering::Relaxed);
            slot.len.store(name.len(), Ordering::Relaxed);
            slot.seq.store(seq.wrapping_add(2), Ordering::Release);
        }
        self.depth.store(d + 1, Ordering::Release);
    }

    /// Pops the top entry (owning thread only). The slot contents are
    /// left behind; depth alone bounds what readers see.
    fn pop(&self) {
        let d = self.depth.load(Ordering::Relaxed);
        self.depth.store(d.saturating_sub(1), Ordering::Release);
    }

    /// Reads the current stack into `out` (any thread). The result is a
    /// consistent-per-frame snapshot: every name is a real `&'static
    /// str` from some instrumentation site (the seqlock forbids torn
    /// `(ptr, len)` pairs), though frames racing a concurrent push/pop
    /// may mix adjacent instants — acceptable noise for a statistical
    /// profiler. A frame that stays in flux is skipped, never spun on
    /// unboundedly.
    pub fn read_into(&self, out: &mut Vec<&'static str>) {
        out.clear();
        let depth = self.depth.load(Ordering::Acquire).min(MAX_LIVE_DEPTH);
        'frames: for slot in &self.slots[..depth] {
            for _ in 0..64 {
                let before = slot.seq.load(Ordering::Acquire);
                if before % 2 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                let ptr = slot.ptr.load(Ordering::Relaxed);
                let len = slot.len.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                let after = slot.seq.load(Ordering::Relaxed);
                if before != after {
                    std::hint::spin_loop();
                    continue;
                }
                if ptr.is_null() {
                    continue 'frames;
                }
                // SAFETY: the seqlock read protocol above guarantees
                // `(ptr, len)` were stored together by one `push` of a
                // `&'static str`, whose bytes live for the program's
                // lifetime — so the slice is valid UTF-8 forever.
                let name =
                    unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) };
                out.push(name);
                continue 'frames;
            }
            // Frame stayed in flux: give up on it (and deeper frames
            // would be even noisier — stop here).
            break;
        }
    }
}

/// Every live stack ever registered (leaked; see [`LiveStack`]).
static LIVE_REGISTRY: Mutex<Vec<&'static LiveStack>> = Mutex::new(Vec::new());

/// Claims a parked stack or leaks a fresh one.
fn acquire_live() -> &'static LiveStack {
    let mut registry = LIVE_REGISTRY.lock().expect("live-stack registry poisoned");
    for stack in registry.iter() {
        if !stack.in_use.swap(true, Ordering::Acquire) {
            stack.depth.store(0, Ordering::Release);
            return stack;
        }
    }
    let stack: &'static LiveStack = Box::leak(Box::new(LiveStack::new()));
    stack.in_use.store(true, Ordering::Relaxed);
    registry.push(stack);
    stack
}

/// Owns this thread's claim on a registry stack; parks it on drop so a
/// dead thread's stale frames never reach the sampler.
struct LiveHandle(&'static LiveStack);

impl Drop for LiveHandle {
    fn drop(&mut self) {
        self.0.depth.store(0, Ordering::Release);
        self.0.in_use.store(false, Ordering::Release);
    }
}

thread_local! {
    static LIVE: LiveHandle = LiveHandle(acquire_live());
}

/// Pushes onto this thread's live stack; `false` when the thread is
/// tearing down (its handle is gone, so there is nothing to pop later).
fn live_push(name: &'static str) -> bool {
    LIVE.try_with(|h| h.0.push(name)).is_ok()
}

fn live_pop() {
    let _ = LIVE.try_with(|h| h.0.pop());
}

/// Every registered live stack, for the sampler to read. Parked stacks
/// (exited threads) report depth 0 and contribute nothing.
#[must_use]
pub fn live_stacks() -> Vec<&'static LiveStack> {
    LIVE_REGISTRY
        .lock()
        .expect("live-stack registry poisoned")
        .clone()
}

/// Turns live-stack maintenance on or off (process-global). On only
/// while the sampling profiler runs; [`span()`] keeps its
/// one-relaxed-load fast path when both this and collection are off.
pub fn set_sampling(on: bool) {
    if on {
        STATE.fetch_or(SAMPLER_BIT, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!SAMPLER_BIT, Ordering::Relaxed);
    }
}

/// Is live-stack maintenance currently on?
#[inline]
#[must_use]
pub fn sampling() -> bool {
    STATE.load(Ordering::Relaxed) & SAMPLER_BIT != 0
}

/// Turns span collection on or off (process-global).
pub fn set_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
        STATE.fetch_or(GLOBAL_BIT, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!GLOBAL_BIT, Ordering::Relaxed);
    }
}

/// Is span collection currently on?
#[inline]
#[must_use]
pub fn enabled() -> bool {
    STATE.load(Ordering::Relaxed) & GLOBAL_BIT != 0
}

/// Starts buffering this thread's spans until the guard is dropped or
/// [`finish`](CaptureGuard::finish)ed. Not nestable: a second guard on
/// the same thread restarts the buffer. The spans double-report — a
/// capture does not remove them from the global collector when that is
/// also enabled.
#[must_use]
pub fn capture() -> CaptureGuard {
    EPOCH.get_or_init(Instant::now);
    STATE.fetch_add(CAPTURE_UNIT, Ordering::Relaxed);
    CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
    CaptureGuard { finished: false }
}

/// Active per-thread span capture; see [`capture`].
#[derive(Debug)]
pub struct CaptureGuard {
    finished: bool,
}

impl CaptureGuard {
    /// Ends the capture and returns the buffered spans.
    #[must_use]
    pub fn finish(mut self) -> Vec<SpanRecord> {
        self.finished = true;
        self.teardown()
    }

    fn teardown(&self) -> Vec<SpanRecord> {
        let spans = CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default();
        STATE.fetch_sub(CAPTURE_UNIT, Ordering::Relaxed);
        spans
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.teardown();
        }
    }
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        let mut v = id.get();
        if v == 0 {
            v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            id.set(v);
        }
        v
    })
}

/// A fresh process-unique trace id (never 0).
#[must_use]
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// The trace id active on this thread (0 = none).
#[must_use]
pub fn current_trace_id() -> u64 {
    TRACE_ID.with(Cell::get)
}

/// Marks this thread as working on trace `id` until the guard drops
/// (the previous id is restored, so nested scopes compose).
#[must_use]
pub fn with_trace_id(id: u64) -> TraceGuard {
    TraceGuard {
        prev: TRACE_ID.with(|t| t.replace(id)),
    }
}

/// Restores the thread's previous trace id on drop.
#[derive(Debug)]
pub struct TraceGuard {
    prev: u64,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        TRACE_ID.with(|t| t.set(self.prev));
    }
}

/// An open span; the region ends (and the record is emitted) when this
/// guard drops. An inert payload means tracing was disabled at open.
#[must_use = "a span measures the region until the guard drops"]
#[derive(Debug)]
pub struct Span(SpanInner);

#[derive(Debug)]
enum SpanInner {
    /// Nothing to do at close.
    Inert,
    /// Only the sampler's live stack holds this span: pop it at close,
    /// no clock read, no record.
    SampledOnly,
    /// A timed span headed for the collector and/or a capture buffer.
    Recorded { live: LiveSpan, sampled: bool },
}

#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    start: Instant,
    start_ns: u64,
    depth: u16,
    /// Destined for the global collector.
    global: bool,
}

/// Opens a span named `name`. When tracing, sampling, and capture are
/// all off, this is one relaxed atomic load and returns an inert guard.
/// With only sampling on, the span costs a live-stack push/pop (a few
/// uncontended atomic stores) — no clock read, no allocation.
#[inline]
pub fn span(name: &'static str) -> Span {
    let state = STATE.load(Ordering::Relaxed);
    if state == 0 {
        return Span(SpanInner::Inert);
    }
    let sampled = state & SAMPLER_BIT != 0 && live_push(name);
    let global = state & GLOBAL_BIT != 0;
    // A capture guard on *some* thread forces this (cheap) thread-local
    // check; only the capturing thread pays for the record itself.
    let capturing = state >= CAPTURE_UNIT
        && CAPTURE.with(|c| {
            c.borrow()
                .as_ref()
                .is_some_and(|buf| buf.len() < MAX_CAPTURED_SPANS)
        });
    if !global && !capturing {
        return Span(if sampled {
            SpanInner::SampledOnly
        } else {
            SpanInner::Inert
        });
    }
    let epoch = *EPOCH.get_or_init(Instant::now);
    let start = Instant::now();
    let start_ns = u64::try_from(start.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX);
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v.saturating_add(1));
        v
    });
    Span(SpanInner::Recorded {
        live: LiveSpan {
            name,
            start,
            start_ns,
            depth,
            global,
        },
        sampled,
    })
}

impl Drop for Span {
    fn drop(&mut self) {
        let (live, sampled) = match std::mem::replace(&mut self.0, SpanInner::Inert) {
            SpanInner::Inert => return,
            SpanInner::SampledOnly => {
                live_pop();
                return;
            }
            SpanInner::Recorded { live, sampled } => (live, sampled),
        };
        if sampled {
            live_pop();
        }
        let dur_ns = u64::try_from(live.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let record = SpanRecord {
            name: live.name,
            trace: current_trace_id(),
            thread: thread_id(),
            depth: live.depth,
            start_ns: live.start_ns,
            dur_ns,
        };
        CAPTURE.with(|c| {
            if let Some(buf) = c.borrow_mut().as_mut() {
                if buf.len() < MAX_CAPTURED_SPANS {
                    buf.push(record);
                }
            }
        });
        if live.global {
            let mut collector = COLLECTOR.lock().expect("span collector poisoned");
            if collector.len() < MAX_RECORDED_SPANS {
                collector.push(record);
            } else {
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Drains and returns every span recorded so far.
#[must_use]
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *COLLECTOR.lock().expect("span collector poisoned"))
}

/// Spans lost to the [`MAX_RECORDED_SPANS`] cap since process start.
#[must_use]
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The span tests toggle the process-global collector, so they run
    /// under one lock to avoid draining each other's records.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let before = take_spans().len();
        {
            let _s = span("ignored");
        }
        assert_eq!(take_spans().len().min(before), 0);
    }

    #[test]
    fn nested_spans_record_depth_and_containment() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _drain = take_spans();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                std::hint::black_box(1 + 1);
            }
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        // Drop order: inner closes first.
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.thread, outer.thread);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn trace_ids_nest_and_restore() {
        let _guard = TEST_LOCK.lock().unwrap();
        assert_eq!(current_trace_id(), 0);
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        {
            let _ga = with_trace_id(a);
            assert_eq!(current_trace_id(), a);
            {
                let _gb = with_trace_id(b);
                assert_eq!(current_trace_id(), b);
            }
            assert_eq!(current_trace_id(), a);
        }
        assert_eq!(current_trace_id(), 0);
    }

    #[test]
    fn capture_buffers_spans_without_global_collection() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let _drain = take_spans();
        let cap = capture();
        {
            let _a = span("captured.outer");
            let _b = span("captured.inner");
        }
        let spans = cap.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "captured.inner");
        // Nothing leaked into the global collector, and dropping the
        // guard restored the one-load fast path.
        assert!(take_spans().is_empty());
        {
            let _c = span("after");
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn capture_and_global_collection_compose() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _drain = take_spans();
        let cap = capture();
        {
            let _s = span("both");
        }
        let captured = cap.finish();
        set_enabled(false);
        let global = take_spans();
        assert_eq!(captured.len(), 1);
        assert_eq!(global.len(), 1);
        assert_eq!(captured[0], global[0]);
    }

    #[test]
    fn capture_is_thread_local() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let cap = capture();
        std::thread::spawn(|| {
            let _s = span("other-thread");
        })
        .join()
        .unwrap();
        assert!(cap.finish().is_empty());
    }

    #[test]
    fn live_stack_tracks_open_spans_without_collection() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        set_sampling(true);
        let mut read = Vec::new();
        let mine = LIVE.with(|h| h.0 as *const LiveStack);
        let my_stack = || {
            live_stacks()
                .into_iter()
                .find(|s| std::ptr::eq(*s, mine))
                .expect("this thread's stack is registered")
        };
        {
            let _outer = span("live.outer");
            {
                let _inner = span("live.inner");
                my_stack().read_into(&mut read);
                assert_eq!(read, vec!["live.outer", "live.inner"]);
            }
            my_stack().read_into(&mut read);
            assert_eq!(read, vec!["live.outer"]);
        }
        my_stack().read_into(&mut read);
        assert!(read.is_empty());
        set_sampling(false);
        // With sampling off again the fast path is restored and the
        // stack stays untouched.
        {
            let _s = span("live.after");
            my_stack().read_into(&mut read);
            assert!(read.is_empty());
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn live_stack_and_collection_compose() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        set_sampling(true);
        let _drain = take_spans();
        {
            let _s = span("both.worlds");
            let mut read = Vec::new();
            let mine = LIVE.with(|h| h.0 as *const LiveStack);
            live_stacks()
                .into_iter()
                .find(|s| std::ptr::eq(*s, mine))
                .unwrap()
                .read_into(&mut read);
            assert_eq!(read, vec!["both.worlds"]);
        }
        set_sampling(false);
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "both.worlds");
    }

    #[test]
    fn exited_threads_park_their_live_stack() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_sampling(true);
        std::thread::spawn(|| {
            let _s = span("dying.thread");
        })
        .join()
        .unwrap();
        set_sampling(false);
        // Every registered stack that is not claimed reports depth 0.
        let mut read = Vec::new();
        for stack in live_stacks() {
            if !stack.in_use.load(Ordering::Acquire) {
                stack.read_into(&mut read);
                assert!(read.is_empty(), "parked stack still shows {read:?}");
            }
        }
    }

    #[test]
    fn live_stack_depth_overflow_is_clamped() {
        let stack = LiveStack::new();
        for _ in 0..(MAX_LIVE_DEPTH + 8) {
            stack.push("deep");
        }
        let mut read = Vec::new();
        stack.read_into(&mut read);
        assert_eq!(read.len(), MAX_LIVE_DEPTH);
        for _ in 0..(MAX_LIVE_DEPTH + 8) {
            stack.pop();
        }
        stack.read_into(&mut read);
        assert!(read.is_empty());
    }

    #[test]
    fn spans_carry_the_active_trace_id() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _drain = take_spans();
        let id = next_trace_id();
        {
            let _g = with_trace_id(id);
            let _s = span("traced");
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace, id);
    }
}
