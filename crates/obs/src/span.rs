//! Span-based tracing: a thread-local span stack with monotonic
//! timestamps and per-request trace ids.
//!
//! A *span* is one timed region of code, opened with [`span()`] and
//! closed when the returned guard drops. Spans nest lexically: the
//! thread-local depth counter records how deep each span sat on its
//! thread's stack, and the monotonic `start`/`duration` pair makes the
//! nesting reconstructible from timestamps alone (what the
//! [`chrome`](crate::chrome) exporter relies on).
//!
//! **Cost when disabled** (the default): one `Ordering::Relaxed` atomic
//! load per [`span()`] call — no clock read, no allocation. This is the
//! property the `crates/bench` overhead benchmark pins down.
//!
//! **Trace ids** correlate spans and log lines with the request that
//! caused them: a transport assigns one id per request
//! ([`next_trace_id`]) and wraps the request's execution in
//! [`with_trace_id`]; every span and log line produced on that thread
//! while the guard lives carries the id.
//!
//! Records accumulate in a global collector ([`take_spans`] drains it),
//! capped at [`MAX_RECORDED_SPANS`] so a forgotten `set_enabled(true)`
//! cannot grow memory without bound; overflow is counted in
//! [`dropped_spans`].

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Upper bound on buffered span records (~48 MB worst case).
pub const MAX_RECORDED_SPANS: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static COLLECTOR: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static TRACE_ID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// One completed span, timestamped in nanoseconds since the trace epoch
/// (the first moment tracing was enabled in this process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static, from the instrumentation site).
    pub name: &'static str,
    /// Trace id active on the thread when the span closed (0 = none).
    pub trace: u64,
    /// Small stable id of the recording thread.
    pub thread: u64,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: u16,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Turns span collection on or off (process-global).
pub fn set_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is span collection currently on?
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        let mut v = id.get();
        if v == 0 {
            v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            id.set(v);
        }
        v
    })
}

/// A fresh process-unique trace id (never 0).
#[must_use]
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// The trace id active on this thread (0 = none).
#[must_use]
pub fn current_trace_id() -> u64 {
    TRACE_ID.with(Cell::get)
}

/// Marks this thread as working on trace `id` until the guard drops
/// (the previous id is restored, so nested scopes compose).
#[must_use]
pub fn with_trace_id(id: u64) -> TraceGuard {
    TraceGuard {
        prev: TRACE_ID.with(|t| t.replace(id)),
    }
}

/// Restores the thread's previous trace id on drop.
#[derive(Debug)]
pub struct TraceGuard {
    prev: u64,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        TRACE_ID.with(|t| t.set(self.prev));
    }
}

/// An open span; the region ends (and the record is emitted) when this
/// guard drops. A `None` payload means tracing was disabled at open.
#[must_use = "a span measures the region until the guard drops"]
#[derive(Debug)]
pub struct Span(Option<LiveSpan>);

#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    start: Instant,
    start_ns: u64,
    depth: u16,
}

/// Opens a span named `name`. When tracing is disabled this is one
/// relaxed atomic load and returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span(None);
    }
    let epoch = *EPOCH.get_or_init(Instant::now);
    let start = Instant::now();
    let start_ns = u64::try_from(start.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX);
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v.saturating_add(1));
        v
    });
    Span(Some(LiveSpan {
        name,
        start,
        start_ns,
        depth,
    }))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.0.take() else { return };
        let dur_ns = u64::try_from(live.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let record = SpanRecord {
            name: live.name,
            trace: current_trace_id(),
            thread: thread_id(),
            depth: live.depth,
            start_ns: live.start_ns,
            dur_ns,
        };
        let mut collector = COLLECTOR.lock().expect("span collector poisoned");
        if collector.len() < MAX_RECORDED_SPANS {
            collector.push(record);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Drains and returns every span recorded so far.
#[must_use]
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *COLLECTOR.lock().expect("span collector poisoned"))
}

/// Spans lost to the [`MAX_RECORDED_SPANS`] cap since process start.
#[must_use]
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The span tests toggle the process-global collector, so they run
    /// under one lock to avoid draining each other's records.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let before = take_spans().len();
        {
            let _s = span("ignored");
        }
        assert_eq!(take_spans().len().min(before), 0);
    }

    #[test]
    fn nested_spans_record_depth_and_containment() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _drain = take_spans();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                std::hint::black_box(1 + 1);
            }
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        // Drop order: inner closes first.
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.thread, outer.thread);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn trace_ids_nest_and_restore() {
        let _guard = TEST_LOCK.lock().unwrap();
        assert_eq!(current_trace_id(), 0);
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        {
            let _ga = with_trace_id(a);
            assert_eq!(current_trace_id(), a);
            {
                let _gb = with_trace_id(b);
                assert_eq!(current_trace_id(), b);
            }
            assert_eq!(current_trace_id(), a);
        }
        assert_eq!(current_trace_id(), 0);
    }

    #[test]
    fn spans_carry_the_active_trace_id() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _drain = take_spans();
        let id = next_trace_id();
        {
            let _g = with_trace_id(id);
            let _s = span("traced");
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace, id);
    }
}
