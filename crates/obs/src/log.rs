//! A leveled logger on stderr, controlled by the `NTR_LOG` environment
//! variable.
//!
//! `NTR_LOG` accepts `off`, `error`, `warn`, `info`, `debug`, or
//! `trace`; unset or unparsable values default to `info`. The filter is
//! one global `AtomicU8`, so a *disabled* log site costs exactly one
//! `Ordering::Relaxed` load — cheap enough for hot loops.
//!
//! Log lines carry a wall-clock timestamp (Unix seconds), the level, the
//! emitting module, and — when the calling thread is inside a traced
//! request — the current trace id:
//!
//! ```text
//! [1754465000.123 info  ntr_server::service] routed 20-pin net trace=42
//! ```
//!
//! Use the macros, not [`log()`] directly, so the level check happens at
//! the call site:
//!
//! ```
//! ntr_obs::log_info!("routed {} nets", 3);
//! ntr_obs::log_debug!("candidate sweep took {} us", 412);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Severity of one log event, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The operation failed.
    Error = 1,
    /// Something surprising that does not fail the operation.
    Warn = 2,
    /// High-level progress (the default filter).
    Info = 3,
    /// Per-request details.
    Debug = 4,
    /// Per-candidate / inner-loop details.
    Trace = 5,
}

impl Level {
    /// Fixed-width lowercase name, for aligned log lines.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn ",
            Level::Info => "info ",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Filter value meaning "log nothing".
const OFF: u8 = 0;
/// Sentinel: the filter has not been initialized from `NTR_LOG` yet.
const UNINIT: u8 = u8::MAX;

static FILTER: AtomicU8 = AtomicU8::new(UNINIT);

/// Parses an `NTR_LOG` value. `None` means unparsable (caller picks the
/// default); `Some(OFF)` disables logging entirely.
#[must_use]
pub fn parse_filter(s: &str) -> Option<u8> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => Some(OFF),
        "error" => Some(Level::Error as u8),
        "warn" | "warning" => Some(Level::Warn as u8),
        "info" => Some(Level::Info as u8),
        "debug" => Some(Level::Debug as u8),
        "trace" => Some(Level::Trace as u8),
        _ => None,
    }
}

#[cold]
fn init_from_env() -> u8 {
    let level = std::env::var("NTR_LOG")
        .ok()
        .and_then(|v| parse_filter(&v))
        .unwrap_or(Level::Info as u8);
    // First writer wins, so a concurrent set_max_level is not clobbered.
    match FILTER.compare_exchange(UNINIT, level, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => level,
        Err(current) => current,
    }
}

/// Is `level` currently enabled? One relaxed atomic load on the fast
/// path; the first call reads `NTR_LOG`.
#[inline]
#[must_use]
pub fn enabled(level: Level) -> bool {
    let mut filter = FILTER.load(Ordering::Relaxed);
    if filter == UNINIT {
        filter = init_from_env();
    }
    level as u8 <= filter
}

/// Overrides the filter (e.g. `--quiet`). `None` disables logging.
pub fn set_max_level(level: Option<Level>) {
    FILTER.store(level.map_or(OFF, |l| l as u8), Ordering::Relaxed);
}

/// The current filter, or `None` when logging is off.
#[must_use]
pub fn max_level() -> Option<Level> {
    match FILTER.load(Ordering::Relaxed) {
        OFF => None,
        UNINIT => Some(Level::Info),
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        _ => Some(Level::Trace),
    }
}

/// Writes one log line to stderr. Prefer the `log_*!` macros, which
/// check [`enabled`] first and capture the calling module.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    let trace = crate::span::current_trace_id();
    if trace == 0 {
        eprintln!(
            "[{}.{:03} {} {target}] {args}",
            now.as_secs(),
            now.subsec_millis(),
            level.as_str(),
        );
    } else {
        eprintln!(
            "[{}.{:03} {} {target}] {args} trace={trace}",
            now.as_secs(),
            now.subsec_millis(),
            level.as_str(),
        );
    }
}

/// Shared body of the `log_*!` macros.
#[doc(hidden)]
#[macro_export]
macro_rules! __log_at {
    ($level:expr, $($arg:tt)*) => {
        if $crate::log::enabled($level) {
            $crate::log::log($level, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Error`](crate::log::Level::Error).
#[macro_export]
macro_rules! log_error { ($($arg:tt)*) => { $crate::__log_at!($crate::log::Level::Error, $($arg)*) } }

/// Logs at [`Level::Warn`](crate::log::Level::Warn).
#[macro_export]
macro_rules! log_warn { ($($arg:tt)*) => { $crate::__log_at!($crate::log::Level::Warn, $($arg)*) } }

/// Logs at [`Level::Info`](crate::log::Level::Info).
#[macro_export]
macro_rules! log_info { ($($arg:tt)*) => { $crate::__log_at!($crate::log::Level::Info, $($arg)*) } }

/// Logs at [`Level::Debug`](crate::log::Level::Debug).
#[macro_export]
macro_rules! log_debug { ($($arg:tt)*) => { $crate::__log_at!($crate::log::Level::Debug, $($arg)*) } }

/// Logs at [`Level::Trace`](crate::log::Level::Trace).
#[macro_export]
macro_rules! log_trace { ($($arg:tt)*) => { $crate::__log_at!($crate::log::Level::Trace, $($arg)*) } }

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_values_parse() {
        assert_eq!(parse_filter("off"), Some(OFF));
        assert_eq!(parse_filter("ERROR"), Some(1));
        assert_eq!(parse_filter(" warn "), Some(2));
        assert_eq!(parse_filter("info"), Some(3));
        assert_eq!(parse_filter("debug"), Some(4));
        assert_eq!(parse_filter("trace"), Some(5));
        assert_eq!(parse_filter("verbose"), None);
    }

    #[test]
    fn set_max_level_controls_enabled() {
        // Tests share one process-global filter; exercise it and restore.
        let before = max_level();
        set_max_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_max_level(None);
        assert!(!enabled(Level::Error));
        assert_eq!(max_level(), None);
        set_max_level(before);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }
}
