//! An embedded, fixed-memory time-series store for the metrics
//! registry: every counter, gauge, and histogram percentile gets a
//! short history, so "has this degraded over the last five minutes?"
//! is answerable from inside the process.
//!
//! Design constraints, in order:
//!
//! 1. **Fixed memory.** Every series owns one ring per
//!    [`Resolution`] — by default 1 s × 300, 10 s × 360, 60 s × 360
//!    (5 min raw, 1 h mid, 6 h coarse). Slots are stamped with their
//!    bucket index (+1, so 0 means never written); a lapped slot is
//!    simply overwritten, and a query treats any slot whose stamp
//!    falls outside the live window as absent — the same
//!    stamped-slot idiom as
//!    [`WindowedHistogram`](crate::metrics::WindowedHistogram).
//! 2. **Rollups that can't drift.** Each sample is recorded into
//!    *all* resolutions directly; a 10 s bucket is the aggregate
//!    (count/sum/min/max/last) of the raw samples in its span by
//!    construction, not a separately-scheduled compaction that could
//!    race the raw ring. The property tests assert exactly this.
//! 3. **Deterministic under test.** Everything is driven through
//!    `*_at(t_secs)` entry points; the production wrappers derive
//!    `t_secs` from a process epoch. No wall clock in the core.
//!
//! The server snapshots the registry into the store once a second
//! (counters and gauges as their value; histograms as `<name>_p50` /
//! `<name>_p99` in microseconds), serves queries via
//! `{"op":"query"}` / `GET /tsdb?metric=...&res=...`, and renders
//! [`sparkline_svg`] strips on `/statusz`.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;
use crate::metrics::{Metric, MetricsRegistry};

/// One retention tier: `slots` buckets of `period_secs` each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resolution {
    /// Bucket width in seconds.
    pub period_secs: u64,
    /// Ring capacity in buckets.
    pub slots: usize,
}

/// Default tiers: 5 min of raw seconds, 1 h at 10 s, 6 h at 1 min.
pub const DEFAULT_RESOLUTIONS: [Resolution; 3] = [
    Resolution {
        period_secs: 1,
        slots: 300,
    },
    Resolution {
        period_secs: 10,
        slots: 360,
    },
    Resolution {
        period_secs: 60,
        slots: 360,
    },
];

/// Cap on distinct series; new names beyond it are counted, not stored.
pub const MAX_SERIES: usize = 512;

/// One queryable bucket of a series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Bucket start, in seconds since the store's epoch.
    pub t_secs: u64,
    /// Samples aggregated into this bucket.
    pub count: u64,
    /// Sum of the samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Most recent sample.
    pub last: f64,
}

#[derive(Clone, Copy, Default)]
struct Slot {
    /// Bucket index + 1; 0 = never written. A stale stamp (outside the
    /// ring's live window at query time) reads as absent.
    stamp: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    last: f64,
}

struct Ring {
    period_secs: u64,
    slots: Vec<Slot>,
}

impl Ring {
    fn new(res: Resolution) -> Self {
        Self {
            period_secs: res.period_secs,
            slots: vec![Slot::default(); res.slots.max(1)],
        }
    }

    fn record(&mut self, t_secs: u64, value: f64) {
        let bucket = t_secs / self.period_secs;
        let idx = (bucket % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.stamp != bucket + 1 {
            *slot = Slot {
                stamp: bucket + 1,
                count: 0,
                sum: 0.0,
                min: value,
                max: value,
                last: value,
            };
        }
        slot.count += 1;
        slot.sum += value;
        slot.min = slot.min.min(value);
        slot.max = slot.max.max(value);
        slot.last = value;
    }

    /// Buckets still inside the retention window at time `now_secs`,
    /// oldest first. Empty buckets are absent, not zero.
    fn points(&self, now_secs: u64) -> Vec<Point> {
        let bucket_now = now_secs / self.period_secs;
        let window = self.slots.len() as u64;
        let oldest = (bucket_now + 1).saturating_sub(window);
        let mut out: Vec<Point> = self
            .slots
            .iter()
            .filter(|s| s.stamp > oldest && s.stamp <= bucket_now + 1)
            .map(|s| Point {
                t_secs: (s.stamp - 1) * self.period_secs,
                count: s.count,
                sum: s.sum,
                min: s.min,
                max: s.max,
                last: s.last,
            })
            .collect();
        out.sort_by_key(|p| p.t_secs);
        out
    }
}

struct Series {
    rings: Vec<Ring>,
}

struct Inner {
    /// BTreeMap so the series listing is sorted and stable.
    series: BTreeMap<String, Series>,
    series_dropped: u64,
}

/// The embedded store. One per process in practice (owned by the
/// service), but nothing global — tests build as many as they like.
pub struct Tsdb {
    resolutions: Vec<Resolution>,
    inner: Mutex<Inner>,
    epoch: Instant,
}

impl Default for Tsdb {
    fn default() -> Self {
        Self::new(&DEFAULT_RESOLUTIONS)
    }
}

impl Tsdb {
    /// Builds a store with the given retention tiers.
    ///
    /// # Panics
    /// When `resolutions` is empty or contains a zero period.
    #[must_use]
    pub fn new(resolutions: &[Resolution]) -> Self {
        assert!(!resolutions.is_empty(), "a Tsdb needs at least one tier");
        assert!(
            resolutions.iter().all(|r| r.period_secs > 0 && r.slots > 0),
            "resolution periods and slot counts must be nonzero"
        );
        Self {
            resolutions: resolutions.to_vec(),
            inner: Mutex::new(Inner {
                series: BTreeMap::new(),
                series_dropped: 0,
            }),
            epoch: Instant::now(),
        }
    }

    /// The configured retention tiers.
    #[must_use]
    pub fn resolutions(&self) -> &[Resolution] {
        &self.resolutions
    }

    /// Seconds since this store was built — the `t_secs` the
    /// production wrappers pass to the deterministic core.
    #[must_use]
    pub fn now_secs(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Records one sample at an explicit time (deterministic core).
    pub fn record_at(&self, name: &str, t_secs: u64, value: f64) {
        let mut inner = self.inner.lock().expect("tsdb poisoned");
        if !inner.series.contains_key(name) {
            if inner.series.len() >= MAX_SERIES {
                inner.series_dropped += 1;
                return;
            }
            let series = Series {
                rings: self.resolutions.iter().map(|r| Ring::new(*r)).collect(),
            };
            inner.series.insert(name.to_owned(), series);
        }
        let series = inner.series.get_mut(name).expect("just inserted");
        for ring in &mut series.rings {
            ring.record(t_secs, value);
        }
    }

    /// Snapshots every family in `registry` at an explicit time:
    /// counters and gauges as their value, histograms as
    /// `<name>_p50` / `<name>_p99` (microseconds).
    pub fn snapshot_registry_at(&self, registry: &MetricsRegistry, t_secs: u64) {
        for family in registry.families() {
            match &family.metric {
                Metric::Counter(c) => self.record_at(&family.name, t_secs, c.get() as f64),
                Metric::Gauge(g) => self.record_at(&family.name, t_secs, g.get() as f64),
                Metric::Histogram(h) => {
                    if h.count() == 0 {
                        continue;
                    }
                    for (suffix, pct) in [("_p50", 50.0), ("_p99", 99.0)] {
                        self.record_at(
                            &format!("{}{suffix}", family.name),
                            t_secs,
                            h.percentile_micros(pct) as f64,
                        );
                    }
                }
            }
        }
    }

    /// Production wrapper: snapshot `registry` at the current epoch
    /// offset.
    pub fn snapshot_now(&self, registry: &MetricsRegistry) {
        self.snapshot_registry_at(registry, self.now_secs());
    }

    /// All series names, sorted.
    #[must_use]
    pub fn series_names(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("tsdb poisoned");
        inner.series.keys().cloned().collect()
    }

    /// Series discarded because [`MAX_SERIES`] was reached.
    #[must_use]
    pub fn series_dropped(&self) -> u64 {
        self.inner.lock().expect("tsdb poisoned").series_dropped
    }

    /// Points for `metric` at the tier whose period is `res_secs`,
    /// as of `now_secs`. `None` when the metric or tier is unknown.
    #[must_use]
    pub fn query_at(&self, metric: &str, res_secs: u64, now_secs: u64) -> Option<Vec<Point>> {
        let inner = self.inner.lock().expect("tsdb poisoned");
        let series = inner.series.get(metric)?;
        let ring = series.rings.iter().find(|r| r.period_secs == res_secs)?;
        Some(ring.points(now_secs))
    }

    /// [`query_at`](Self::query_at) against the store's own clock.
    #[must_use]
    pub fn query(&self, metric: &str, res_secs: u64) -> Option<Vec<Point>> {
        self.query_at(metric, res_secs, self.now_secs())
    }

    /// The wire answer for `{"op":"query"}` and `GET /tsdb`.
    ///
    /// With a known metric: `{"ok":true,"op":"query","metric":...,
    /// "res_secs":N,"points":[{"t":..,"count":..,"sum":..,"min":..,
    /// "max":..,"last":..},...]}`. Without one (or `metric` empty):
    /// the series listing `{"ok":true,"op":"query","series":[...]}`.
    /// Unknown metric or tier: `{"ok":false,...}` with an error.
    #[must_use]
    pub fn query_json_at(&self, metric: Option<&str>, res_secs: u64, now_secs: u64) -> Json {
        let metric = metric.filter(|m| !m.is_empty());
        let Some(metric) = metric else {
            let names = self
                .series_names()
                .into_iter()
                .map(Json::str)
                .collect::<Vec<_>>();
            return Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::str("query")),
                ("series", Json::Arr(names)),
            ]);
        };
        match self.query_at(metric, res_secs, now_secs) {
            Some(points) => {
                let points = points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("t", Json::Num(p.t_secs as f64)),
                            ("count", Json::Num(p.count as f64)),
                            ("sum", Json::Num(p.sum)),
                            ("min", Json::Num(p.min)),
                            ("max", Json::Num(p.max)),
                            ("last", Json::Num(p.last)),
                        ])
                    })
                    .collect::<Vec<_>>();
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("op", Json::str("query")),
                    ("metric", Json::str(metric)),
                    ("res_secs", Json::Num(res_secs as f64)),
                    ("points", Json::Arr(points)),
                ])
            }
            None => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("op", Json::str("query")),
                (
                    "error",
                    Json::str(format!(
                        "unknown metric {metric:?} at res {res_secs}s; query without \
                         a metric for the series list"
                    )),
                ),
            ]),
        }
    }

    /// [`query_json_at`](Self::query_json_at) against the store's own
    /// clock.
    #[must_use]
    pub fn query_json(&self, metric: Option<&str>, res_secs: u64) -> Json {
        self.query_json_at(metric, res_secs, self.now_secs())
    }

    /// The last-value track of a series (up to the tier's full
    /// window), for sparklines. Empty when the series is unknown.
    #[must_use]
    pub fn spark_values(&self, metric: &str, res_secs: u64) -> Vec<f64> {
        self.query(metric, res_secs)
            .unwrap_or_default()
            .iter()
            .map(|p| p.last)
            .collect()
    }
}

/// An inline SVG sparkline of `values`, oldest first — no scripts, no
/// external assets, so it embeds straight into `/statusz`. Returns a
/// small "no data" placeholder for fewer than two points.
#[must_use]
pub fn sparkline_svg(values: &[f64], width: u32, height: u32) -> String {
    if values.len() < 2 {
        return format!(
            "<svg width=\"{width}\" height=\"{height}\" \
             xmlns=\"http://www.w3.org/2000/svg\"><text x=\"2\" y=\"{}\" \
             font-size=\"10\">no data</text></svg>",
            height.saturating_sub(3).max(8)
        );
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = if (hi - lo).abs() < f64::EPSILON {
        1.0
    } else {
        hi - lo
    };
    let (w, h) = (f64::from(width), f64::from(height));
    let step = w / (values.len() - 1) as f64;
    let mut points = String::new();
    for (i, &v) in values.iter().enumerate() {
        let x = i as f64 * step;
        // SVG y grows downward; leave a 1px margin so the stroke
        // isn't clipped at the extremes.
        let y = 1.0 + (h - 2.0) * (1.0 - (v - lo) / span);
        if i > 0 {
            points.push(' ');
        }
        points.push_str(&format!("{x:.1},{y:.1}"));
    }
    format!(
        "<svg width=\"{width}\" height=\"{height}\" \
         xmlns=\"http://www.w3.org/2000/svg\"><polyline fill=\"none\" \
         stroke=\"#06c\" stroke-width=\"1\" points=\"{points}\"/></svg>"
    )
}

/// Strict validator for [`Tsdb::query_json`] output — used by tests
/// and the CI smoke checker. Returns the number of points (metric
/// form) or series names (listing form).
///
/// # Errors
/// A description of the first malformed element.
pub fn check_query_json(text: &str) -> Result<usize, String> {
    let json = Json::parse(text).map_err(|e| format!("unparseable query answer: {e}"))?;
    if json.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("query answer not ok: {json}"));
    }
    if json.get("op").and_then(Json::as_str) != Some("query") {
        return Err(format!("op is not \"query\": {json}"));
    }
    if let Some(series) = json.get("series").and_then(Json::as_arr) {
        for (i, name) in series.iter().enumerate() {
            if name.as_str().is_none_or(str::is_empty) {
                return Err(format!("series[{i}] is not a nonempty string"));
            }
        }
        return Ok(series.len());
    }
    if json.get("metric").and_then(Json::as_str).is_none() {
        return Err("neither series listing nor metric answer".to_owned());
    }
    let res = json
        .get("res_secs")
        .and_then(Json::as_f64)
        .ok_or("missing res_secs")?;
    if res < 1.0 {
        return Err(format!("res_secs {res} < 1"));
    }
    let points = json
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("missing points array")?;
    let mut prev_t = -1.0;
    for (i, p) in points.iter().enumerate() {
        let field = |k: &str| {
            p.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("points[{i}].{k} missing or not a number"))
        };
        let (t, count) = (field("t")?, field("count")?);
        let (min, max, last) = (field("min")?, field("max")?, field("last")?);
        field("sum")?;
        if t <= prev_t {
            return Err(format!("points[{i}].t {t} not strictly increasing"));
        }
        prev_t = t;
        if count < 1.0 {
            return Err(format!(
                "points[{i}] has count {count} < 1 (empty buckets must be absent)"
            ));
        }
        if min > max || last < min || last > max {
            return Err(format!(
                "points[{i}] violates min {min} <= last {last} <= max {max}"
            ));
        }
    }
    Ok(points.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tsdb {
        Tsdb::new(&[
            Resolution {
                period_secs: 1,
                slots: 30,
            },
            Resolution {
                period_secs: 10,
                slots: 12,
            },
        ])
    }

    #[test]
    fn rollup_buckets_aggregate_raw_samples() {
        let db = small();
        for (t, v) in [(20, 5.0), (21, 1.0), (25, 9.0), (29, 3.0)] {
            db.record_at("m", t, v);
        }
        let raw = db.query_at("m", 1, 29).unwrap();
        assert_eq!(raw.len(), 4);
        let coarse = db.query_at("m", 10, 29).unwrap();
        assert_eq!(coarse.len(), 1);
        let c = coarse[0];
        assert_eq!(c.t_secs, 20);
        assert_eq!(c.count, 4);
        assert!((c.sum - 18.0).abs() < 1e-9);
        assert!((c.min - 1.0).abs() < 1e-9);
        assert!((c.max - 9.0).abs() < 1e-9);
        assert!((c.last - 3.0).abs() < 1e-9);
    }

    #[test]
    fn lapped_slots_are_overwritten_and_stale_ones_excluded() {
        let db = small();
        db.record_at("m", 3, 1.0);
        // 40 > 3 + 30: the raw ring has lapped past t=3.
        db.record_at("m", 40, 2.0);
        let raw = db.query_at("m", 1, 40).unwrap();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].t_secs, 40);
        db.record_at("m", 33, 7.0); // 33 % 30 == 3 % 30: reuses t=3's slot
        let raw = db.query_at("m", 1, 40).unwrap();
        assert_eq!(
            raw.iter().map(|p| p.t_secs).collect::<Vec<_>>(),
            vec![33, 40]
        );
    }

    #[test]
    fn empty_windows_are_absent_not_zero() {
        let db = small();
        db.record_at("m", 5, 1.0);
        db.record_at("m", 8, 2.0);
        let raw = db.query_at("m", 1, 10).unwrap();
        assert_eq!(raw.iter().map(|p| p.t_secs).collect::<Vec<_>>(), vec![5, 8]);
        assert!(raw.iter().all(|p| p.count >= 1));
    }

    #[test]
    fn unknown_metric_and_resolution_answer_none() {
        let db = small();
        db.record_at("m", 1, 1.0);
        assert!(db.query_at("nope", 1, 5).is_none());
        assert!(db.query_at("m", 7, 5).is_none());
    }

    #[test]
    fn registry_snapshot_covers_all_metric_kinds() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("t_total", "a counter");
        let g = registry.gauge("t_gauge", "a gauge");
        let h = registry.histogram("t_latency_us", "a histogram");
        c.add(3);
        g.set(-4);
        h.record_micros(120);
        let db = small();
        db.snapshot_registry_at(&registry, 2);
        let names = db.series_names();
        for expected in ["t_total", "t_gauge", "t_latency_us_p50", "t_latency_us_p99"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
        assert_eq!(db.query_at("t_total", 1, 2).unwrap()[0].last, 3.0);
        assert_eq!(db.query_at("t_gauge", 1, 2).unwrap()[0].last, -4.0);
        // An empty histogram contributes no percentile series.
        let registry2 = MetricsRegistry::new();
        registry2.histogram("t_empty_us", "never recorded");
        let db2 = small();
        db2.snapshot_registry_at(&registry2, 1);
        assert!(db2.series_names().is_empty());
    }

    #[test]
    fn query_json_forms_validate() {
        let db = small();
        db.record_at("m", 4, 2.5);
        db.record_at("m", 6, 1.5);
        let listing = db.query_json_at(None, 1, 6).to_line();
        assert_eq!(check_query_json(&listing).unwrap(), 1);
        let answer = db.query_json_at(Some("m"), 1, 6).to_line();
        assert_eq!(check_query_json(&answer).unwrap(), 2);
        let bad = db.query_json_at(Some("nope"), 1, 6).to_line();
        assert!(check_query_json(&bad).is_err());
        assert!(check_query_json("{").is_err());
        assert!(check_query_json("{\"ok\":true,\"op\":\"query\"}").is_err());
    }

    #[test]
    fn series_cap_drops_and_counts() {
        let db = Tsdb::new(&[Resolution {
            period_secs: 1,
            slots: 4,
        }]);
        for i in 0..(MAX_SERIES + 5) {
            db.record_at(&format!("s{i}"), 0, 1.0);
        }
        assert_eq!(db.series_names().len(), MAX_SERIES);
        assert_eq!(db.series_dropped(), 5);
    }

    #[test]
    fn sparkline_svg_is_wellformed() {
        let svg = sparkline_svg(&[1.0, 3.0, 2.0, 5.0], 120, 24);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("<polyline"));
        assert!(svg.ends_with("</svg>"));
        let empty = sparkline_svg(&[], 120, 24);
        assert!(empty.contains("no data"));
        let flat = sparkline_svg(&[2.0, 2.0, 2.0], 120, 24);
        assert!(flat.contains("<polyline"));
    }
}
