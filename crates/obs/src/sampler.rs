//! The always-on sampling profiler: a background thread that reads
//! every registered [`LiveStack`](crate::span::LiveStack) at a fixed
//! rate and aggregates the observed call paths.
//!
//! Span tracing ([`crate::span`]) answers "what happened to *this*
//! request" but costs a clock read and a record per span — too much to
//! leave on for every request forever. The sampler inverts the deal:
//! span sites pay only a live-stack push/pop (a few uncontended atomic
//! stores, no clock), and one background thread wakes `hz` times a
//! second, snapshots each thread's stack of open span names, and counts
//! identical paths. Sampled counts approximate wall time (`samples ×
//! period`), which is exactly what a flamegraph wants; the bench gate
//! pins the overhead on `server_round_trip` at ≤ the regression
//! threshold.
//!
//! One process-global sampler matches the one process-global span
//! state: [`start`] is idempotent, [`stop`] joins the thread and turns
//! live-stack maintenance off again. [`profile`] converts the
//! aggregate into the existing [`Profile`](crate::profile::Profile)
//! tree (nanoseconds = samples × period), so
//! [`folded_stacks`](crate::profile::folded_stacks) and
//! [`top_self`](crate::profile::top_self) work unchanged — the server's
//! `GET /profilez` and `{"op":"profile","source":"sampler"}` are thin
//! wrappers, and `route --sample-profile-out` writes the same format.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::profile::{Profile, ProfileNode};
use crate::span;

/// Default sampling rate. Prime, the profiler tradition: a rate that
/// shares no factor with periodic work is less likely to alias onto it.
pub const DEFAULT_HZ: u32 = 97;

/// Cap on distinct call paths retained; beyond it new paths are counted
/// in [`paths_dropped`] instead of growing memory.
pub const MAX_PATHS: usize = 4096;

#[derive(Default)]
struct Agg {
    /// Observed call path → number of samples that saw it.
    stacks: HashMap<Vec<&'static str>, u64>,
    /// Samples that found at least one open span.
    samples: u64,
    /// Sampler wake-ups, busy or not.
    ticks: u64,
    /// Samples discarded because [`MAX_PATHS`] was reached.
    paths_dropped: u64,
}

struct Sampler {
    agg: Mutex<Agg>,
    running: AtomicBool,
    stop: AtomicBool,
    period_ns: AtomicU64,
    handle: Mutex<Option<JoinHandle<()>>>,
}

fn global() -> &'static Sampler {
    static GLOBAL: OnceLock<Sampler> = OnceLock::new();
    GLOBAL.get_or_init(|| Sampler {
        agg: Mutex::new(Agg::default()),
        running: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        period_ns: AtomicU64::new(0),
        handle: Mutex::new(None),
    })
}

/// Starts the global sampler at `hz` samples per second. Returns `false`
/// (and does nothing) when `hz` is 0 or a sampler is already running.
pub fn start(hz: u32) -> bool {
    let s = global();
    if hz == 0 || s.running.swap(true, Ordering::AcqRel) {
        return false;
    }
    let period = Duration::from_secs(1) / hz;
    s.period_ns.store(
        period.as_nanos().min(u128::from(u64::MAX)) as u64,
        Ordering::Relaxed,
    );
    s.stop.store(false, Ordering::Release);
    span::set_sampling(true);
    let handle = std::thread::Builder::new()
        .name("ntr-sampler".to_owned())
        .spawn(move || sample_loop(global(), period))
        .expect("spawning the sampler thread failed");
    *s.handle.lock().expect("sampler handle poisoned") = Some(handle);
    true
}

/// Stops the global sampler and turns live-stack maintenance off.
/// Idempotent; the aggregate survives for post-hoc [`profile`] reads.
pub fn stop() {
    let s = global();
    if !s.running.load(Ordering::Acquire) {
        return;
    }
    s.stop.store(true, Ordering::Release);
    if let Some(handle) = s.handle.lock().expect("sampler handle poisoned").take() {
        let _ = handle.join();
    }
    span::set_sampling(false);
    s.running.store(false, Ordering::Release);
}

/// Is the global sampler currently running?
#[must_use]
pub fn is_running() -> bool {
    global().running.load(Ordering::Acquire)
}

/// The configured sampling rate in Hz (0 before the first [`start`]).
#[must_use]
pub fn rate_hz() -> u32 {
    let period = global().period_ns.load(Ordering::Relaxed);
    1_000_000_000u64.checked_div(period).unwrap_or(0) as u32
}

/// Samples taken so far that observed at least one open span.
#[must_use]
pub fn sample_count() -> u64 {
    global()
        .agg
        .lock()
        .expect("sampler aggregate poisoned")
        .samples
}

/// Sampler wake-ups so far (busy or idle).
#[must_use]
pub fn tick_count() -> u64 {
    global()
        .agg
        .lock()
        .expect("sampler aggregate poisoned")
        .ticks
}

/// Discards the aggregate (tests, and `route`'s one-shot runs).
pub fn reset() {
    let mut agg = global().agg.lock().expect("sampler aggregate poisoned");
    *agg = Agg::default();
}

fn sample_loop(s: &'static Sampler, period: Duration) {
    let mut buf: Vec<&'static str> = Vec::with_capacity(span::MAX_LIVE_DEPTH);
    while !s.stop.load(Ordering::Acquire) {
        let stacks = span::live_stacks();
        {
            let mut agg = s.agg.lock().expect("sampler aggregate poisoned");
            agg.ticks += 1;
            for stack in stacks {
                stack.read_into(&mut buf);
                if buf.is_empty() {
                    continue;
                }
                if let Some(count) = agg.stacks.get_mut(buf.as_slice()) {
                    *count += 1;
                } else if agg.stacks.len() < MAX_PATHS {
                    agg.stacks.insert(buf.clone(), 1);
                } else {
                    agg.paths_dropped += 1;
                    continue;
                }
                agg.samples += 1;
            }
        }
        std::thread::sleep(period);
    }
}

fn blank(name: &'static str) -> ProfileNode {
    ProfileNode {
        name,
        inclusive_ns: 0,
        self_ns: 0,
        count: 0,
        children: Vec::new(),
    }
}

fn fill_inclusive(node: &mut ProfileNode) -> u64 {
    let children: u64 = node.children.iter_mut().map(fill_inclusive).sum();
    node.inclusive_ns = node.self_ns.saturating_add(children);
    node.inclusive_ns
}

/// The sampled aggregate as a [`Profile`] tree: each sample contributes
/// one sampling period of self time to the deepest frame of its path,
/// so subtree self-time sums reconstruct inclusive time exactly — the
/// same invariant the span-based profile keeps, which is what lets
/// [`folded_stacks`](crate::profile::folded_stacks) and
/// [`top_self`](crate::profile::top_self) consume it unchanged.
#[must_use]
pub fn profile() -> Profile {
    let s = global();
    let period = s.period_ns.load(Ordering::Relaxed).max(1);
    let agg = s.agg.lock().expect("sampler aggregate poisoned");
    // Deterministic output: HashMap order is arbitrary, folded stacks
    // should not be.
    let mut paths: Vec<(&Vec<&'static str>, u64)> =
        agg.stacks.iter().map(|(p, &n)| (p, n)).collect();
    paths.sort_by(|a, b| a.0.cmp(b.0));
    let mut root = blank("");
    for (path, n) in paths {
        let mut node = &mut root;
        for name in path {
            let idx = match node.children.iter().position(|c| c.name == *name) {
                Some(i) => i,
                None => {
                    node.children.push(blank(name));
                    node.children.len() - 1
                }
            };
            node = &mut node.children[idx];
        }
        node.self_ns = node.self_ns.saturating_add(n.saturating_mul(period));
        node.count += n;
    }
    for r in &mut root.children {
        fill_inclusive(r);
    }
    Profile {
        roots: root.children,
        spans: agg.samples as usize,
    }
}

/// The sampled aggregate as flamegraph folded stacks (values are
/// approximate nanoseconds, samples × period).
#[must_use]
pub fn folded() -> String {
    crate::profile::folded_stacks(&profile())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sampler tests drive the one process-global sampler, so they
    /// run under one lock.
    static SAMPLER_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn sampler_observes_live_spans() {
        let _guard = SAMPLER_LOCK.lock().unwrap();
        reset();
        assert!(start(500));
        assert!(is_running());
        assert!(!start(500), "second start must refuse");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut seen = 0;
        while std::time::Instant::now() < deadline {
            let _outer = span::span("sampled.request");
            let _inner = span::span("sampled.solve");
            std::thread::sleep(Duration::from_millis(5));
            seen = sample_count();
            if seen > 3 {
                break;
            }
        }
        stop();
        assert!(!is_running());
        assert!(seen > 3, "sampler took no samples in 5 s");
        let p = profile();
        assert!(p.spans > 0);
        let folded = folded();
        assert!(
            folded.contains("sampled.request"),
            "missing root frame in {folded:?}"
        );
        crate::profile::check_folded(&folded).unwrap();
        // Self times decompose: folded totals equal root inclusive.
        let total: u64 = folded
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        let inclusive: u64 = p.roots.iter().map(|r| r.inclusive_ns).sum();
        assert_eq!(total, inclusive);
    }

    #[test]
    fn stopped_sampler_restores_the_fast_path() {
        let _guard = SAMPLER_LOCK.lock().unwrap();
        reset();
        assert!(start(250));
        stop();
        assert!(!span::sampling());
        assert!(!start(0), "hz 0 must refuse");
        assert!(!is_running());
    }

    #[test]
    fn profile_of_empty_aggregate_is_empty() {
        let _guard = SAMPLER_LOCK.lock().unwrap();
        reset();
        let p = profile();
        assert!(p.roots.is_empty());
        assert_eq!(p.spans, 0);
        assert!(folded().is_empty());
    }
}
