//! Statistical comparison of performance measurements: the judgment
//! primitive behind the `ntr-bench` regression gate and
//! `ntr-loadgen --baseline`.
//!
//! A [`Measurement`] is a median with an optional confidence interval.
//! [`classify`] renders the three-way verdict the callers act on:
//!
//! - **Regressed** — the median grew beyond the threshold *and* the
//!   confidence intervals do not overlap. Both conditions must hold:
//!   the threshold keeps statistically-detectable-but-tiny shifts from
//!   paging anyone, and the CI test keeps noisy runners from tripping
//!   the gate on a within-noise wobble.
//! - **Improved** — the mirror image, for celebratory output.
//! - **Unchanged** — everything else.
//!
//! Measurements without intervals (e.g. the load generator's raw
//! percentiles) degrade gracefully to a pure threshold test.

/// Default shift threshold (percent) a regression must clear, shared by
/// the `ntr-bench` gate and `ntr-loadgen --baseline`.
pub const DEFAULT_THRESHOLD_PCT: f64 = 5.0;

/// A summarized performance number: central value plus an optional
/// confidence interval around it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// The central value (median for bench artifacts).
    pub value: f64,
    /// Confidence interval `(lo, hi)` when the producer computed one.
    pub ci: Option<(f64, f64)>,
}

impl Measurement {
    /// A bare value with no interval (threshold-only comparison).
    #[must_use]
    pub fn point(value: f64) -> Self {
        Self { value, ci: None }
    }

    /// A value with a confidence interval.
    #[must_use]
    pub fn with_ci(value: f64, lo: f64, hi: f64) -> Self {
        Self {
            value,
            ci: Some((lo, hi)),
        }
    }
}

/// Outcome of comparing a current measurement against a baseline, for a
/// metric where **larger is worse** (latency, wall time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Shift within threshold, or not statistically separable.
    Unchanged,
    /// Slower beyond the threshold, confirmed by disjoint intervals.
    Regressed,
    /// Faster beyond the threshold, confirmed by disjoint intervals.
    Improved,
}

impl Verdict {
    /// Short human tag for tables.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Unchanged => "unchanged",
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "improved",
        }
    }
}

/// Relative shift of `current` from `base`, in percent (positive =
/// grew). Zero when the baseline is zero or either input is not finite.
#[must_use]
pub fn shift_pct(base: f64, current: f64) -> f64 {
    if base == 0.0 || !base.is_finite() || !current.is_finite() {
        return 0.0;
    }
    100.0 * (current - base) / base
}

/// Do two intervals share any point?
#[must_use]
pub fn cis_overlap(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.1 && b.0 <= a.1
}

/// Classifies `current` against `base` for a larger-is-worse metric.
///
/// A shift is flagged only when it clears `threshold_pct` *and* the two
/// confidence intervals are disjoint; when either side carries no
/// interval, the threshold alone decides.
#[must_use]
pub fn classify(base: Measurement, current: Measurement, threshold_pct: f64) -> Verdict {
    let shift = shift_pct(base.value, current.value);
    let separable = match (base.ci, current.ci) {
        (Some(b), Some(c)) => !cis_overlap(b, c),
        _ => true,
    };
    if shift > threshold_pct && separable {
        Verdict::Regressed
    } else if shift < -threshold_pct && separable {
        Verdict::Improved
    } else {
        Verdict::Unchanged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_is_signed_percent() {
        assert!((shift_pct(100.0, 110.0) - 10.0).abs() < 1e-12);
        assert!((shift_pct(100.0, 95.0) + 5.0).abs() < 1e-12);
        assert_eq!(shift_pct(0.0, 50.0), 0.0);
        assert_eq!(shift_pct(f64::NAN, 50.0), 0.0);
    }

    #[test]
    fn overlap_is_symmetric_and_inclusive() {
        assert!(cis_overlap((0.0, 2.0), (2.0, 3.0)));
        assert!(cis_overlap((2.0, 3.0), (0.0, 2.0)));
        assert!(!cis_overlap((0.0, 1.0), (1.1, 2.0)));
    }

    #[test]
    fn both_threshold_and_ci_must_agree_to_regress() {
        let base = Measurement::with_ci(100.0, 98.0, 102.0);
        // 10% slower, disjoint CIs: regression.
        assert_eq!(
            classify(base, Measurement::with_ci(110.0, 108.0, 112.0), 5.0),
            Verdict::Regressed
        );
        // 10% slower but overlapping CIs (noisy run): unchanged.
        assert_eq!(
            classify(base, Measurement::with_ci(110.0, 101.0, 119.0), 5.0),
            Verdict::Unchanged
        );
        // Statistically separable but only 3% slower: below threshold.
        assert_eq!(
            classify(base, Measurement::with_ci(103.0, 102.9, 103.1), 5.0),
            Verdict::Unchanged
        );
    }

    #[test]
    fn improvements_mirror_regressions() {
        let base = Measurement::with_ci(100.0, 98.0, 102.0);
        assert_eq!(
            classify(base, Measurement::with_ci(80.0, 79.0, 81.0), 5.0),
            Verdict::Improved
        );
    }

    #[test]
    fn point_measurements_fall_back_to_threshold_only() {
        let base = Measurement::point(100.0);
        assert_eq!(
            classify(base, Measurement::point(110.0), 5.0),
            Verdict::Regressed
        );
        assert_eq!(
            classify(base, Measurement::point(104.0), 5.0),
            Verdict::Unchanged
        );
        assert_eq!(
            classify(base, Measurement::point(90.0), 5.0),
            Verdict::Improved
        );
    }
}
