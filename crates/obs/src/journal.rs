//! The flight recorder: an always-on, bounded-overhead journal of wide
//! events plus tail-sampled span exemplars.
//!
//! Aggregate metrics answer *"is the service healthy?"*; whole-run
//! traces answer *"where did this benchmark spend its time?"*. Neither
//! answers the production question — *"which request degraded at 14:03,
//! and what was LDRG doing?"*. The journal does: every request appends
//! one [`WideEvent`] (outcome, fidelities, degradation steps, retries,
//! cache/coalescing flags, queue/route/total timings, per-rung attempt
//! timings, candidate counters) to a fixed-size [`Ring`], and every LDRG
//! iteration appends one [`IterEvent`] (delay delta, accepted edge,
//! candidates, sweep time). The rings keep the most recent few thousand
//! records; a crash or a `{"op":"journal"}` pull reads them back.
//!
//! **Overhead** is the design constraint — the recorder is on by
//! default, including under the committed `server_round_trip` and
//! `ldrg_iteration` bench baselines:
//!
//! - An append is wait-free: one `fetch_add` ticket, one slot CAS, one
//!   move, one release store. No allocation beyond what the event itself
//!   carries, no lock, no spinning — a writer that loses its slot CAS
//!   (another writer or a snapshot holds the slot) *drops the record*
//!   and bumps [`RingStats::dropped`] instead of waiting.
//! - Event construction happens once per request (milliseconds of work)
//!   or once per LDRG iteration (at least ~100 µs of sweeps), so the
//!   tens-of-nanoseconds append disappears into the noise.
//! - Exemplar retention takes a mutex, but only after a lock-free
//!   rejection test: flagged requests (error / degraded / injected
//!   fault) and requests slower than the current slowest-K floor (one
//!   relaxed load) are the only ones that touch it.
//!
//! **Tail-based exemplars**: full span traces are kept only where they
//! pay for themselves — the slowest [`SLOW_EXEMPLARS`] requests plus
//! every flagged request (capped at [`FLAGGED_EXEMPLARS`] between
//! drains). Everything else records the wide event alone.
//!
//! The journal is process-global ([`Journal::global`]) so `ntr-core`'s
//! LDRG loop and `ntr-server`'s workers write to the same recorder;
//! tests build private instances with [`Journal::new`].

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;
use crate::span::SpanRecord;

/// Request-ring capacity of the global journal (~1 MB of wide events).
pub const DEFAULT_REQUEST_CAP: usize = 4096;

/// Iteration-ring capacity of the global journal.
pub const DEFAULT_ITERATION_CAP: usize = 8192;

/// How many slowest-request exemplars are retained.
pub const SLOW_EXEMPLARS: usize = 16;

/// Cap on flagged (error/degraded/injected) exemplars held at once;
/// overflow is counted, not silently ignored.
pub const FLAGGED_EXEMPLARS: usize = 256;

/// One wide event: everything known about one request, denormalized
/// into a single record (the "structured log line done right").
#[derive(Debug, Clone, PartialEq)]
pub struct WideEvent {
    /// Journal sequence number (assigned by [`Journal::record_request`]).
    pub seq: u64,
    /// Trace id correlating this event with spans and log lines.
    pub trace: u64,
    /// Canonical content hash of the routed net (0 when unavailable).
    pub net_hash: u64,
    /// Distinct pins in the net.
    pub pins: u64,
    /// Algorithm wire name (`"ldrg"`, `"h1"`, …).
    pub algorithm: &'static str,
    /// `"ok"`, `"route_error"`, `"deadline"`, `"overloaded"`, or
    /// `"parse_error"`.
    pub outcome: &'static str,
    /// Fidelity rung the request asked for.
    pub fidelity_requested: &'static str,
    /// Fidelity rung the answer was computed at.
    pub fidelity_served: &'static str,
    /// Rungs descended below the request (0 = served as asked).
    pub degradation_steps: u32,
    /// Transient-failure retries spent.
    pub retries: u32,
    /// Served straight from the result cache.
    pub cache_hit: bool,
    /// Attached to an identical in-flight request instead of routing.
    pub coalesced: bool,
    /// Faults the active plan injected into this request's process-wide
    /// window (0 when no plan was installed).
    pub injected_faults: u64,
    /// Time spent queued before a worker picked the job up, µs.
    pub queue_us: u64,
    /// Time spent inside the routing engine, µs.
    pub route_us: u64,
    /// End-to-end time from submission to response, µs.
    pub total_us: u64,
    /// Candidate edges emitted by the generator.
    pub candidates_generated: u64,
    /// Candidate edges scored by oracle sweeps.
    pub candidates_scored: u64,
    /// Candidate edges spatial pruning skipped.
    pub candidates_pruned: u64,
    /// Committed LDRG iterations (0 for one-shot heuristics).
    pub ldrg_iterations: u32,
    /// Per-rung attempt timings, in attempt order (a degraded request
    /// lists every rung it tried).
    pub rungs: Vec<RungTiming>,
}

impl Default for WideEvent {
    fn default() -> Self {
        Self {
            seq: 0,
            trace: 0,
            net_hash: 0,
            pins: 0,
            algorithm: "",
            outcome: "ok",
            fidelity_requested: "",
            fidelity_served: "",
            degradation_steps: 0,
            retries: 0,
            cache_hit: false,
            coalesced: false,
            injected_faults: 0,
            queue_us: 0,
            route_us: 0,
            total_us: 0,
            candidates_generated: 0,
            candidates_scored: 0,
            candidates_pruned: 0,
            ldrg_iterations: 0,
            rungs: Vec::new(),
        }
    }
}

impl WideEvent {
    /// Should this event's spans be retained regardless of speed?
    /// (Errors, degradations, and injected faults always keep their
    /// exemplar — they are exactly the requests a post-mortem needs.)
    #[must_use]
    pub fn flagged(&self) -> bool {
        self.outcome != "ok" || self.degradation_steps > 0 || self.injected_faults > 0
    }

    /// The event as a JSON object (one journal line).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let num = |v: u64| Json::Num(v as f64);
        Json::obj(vec![
            ("kind", Json::str("request")),
            ("seq", num(self.seq)),
            ("trace", num(self.trace)),
            ("net_hash", num(self.net_hash)),
            ("pins", num(self.pins)),
            ("algorithm", Json::str(self.algorithm)),
            ("outcome", Json::str(self.outcome)),
            ("fidelity_requested", Json::str(self.fidelity_requested)),
            ("fidelity_served", Json::str(self.fidelity_served)),
            ("degradation_steps", num(u64::from(self.degradation_steps))),
            ("retries", num(u64::from(self.retries))),
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("coalesced", Json::Bool(self.coalesced)),
            ("injected_faults", num(self.injected_faults)),
            ("queue_us", num(self.queue_us)),
            ("route_us", num(self.route_us)),
            ("total_us", num(self.total_us)),
            ("candidates_generated", num(self.candidates_generated)),
            ("candidates_scored", num(self.candidates_scored)),
            ("candidates_pruned", num(self.candidates_pruned)),
            ("ldrg_iterations", num(u64::from(self.ldrg_iterations))),
            (
                "rungs",
                Json::Arr(
                    self.rungs
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("fidelity", Json::str(r.fidelity)),
                                ("micros", Json::Num(r.micros as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One fidelity-ladder attempt: the rung tried and how long it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RungTiming {
    /// Fidelity rung name (`"transient"`, `"moment"`, …).
    pub fidelity: &'static str,
    /// Wall time of the attempt, µs (failed attempts count too).
    pub micros: u64,
}

/// One LDRG iteration: what the search considered and what it committed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterEvent {
    /// Journal sequence number (assigned by
    /// [`Journal::record_iteration`]).
    pub seq: u64,
    /// Trace id of the request that ran the search (0 outside a server).
    pub trace: u64,
    /// Zero-based iteration index within its `ldrg` run.
    pub iteration: u32,
    /// Whether an edge was committed (the final iteration of every run
    /// is a rejection: no candidate improved enough).
    pub accepted: bool,
    /// Node indices of the committed edge (meaningful when `accepted`).
    pub edge: (u64, u64),
    /// Objective value after the iteration, seconds.
    pub best_delay: f64,
    /// Improvement over the pre-iteration objective, seconds (0 when
    /// rejected).
    pub delay_delta: f64,
    /// Candidate edges the generator emitted this iteration.
    pub candidates_generated: u64,
    /// Candidate edges the sweep scored this iteration.
    pub candidates_scored: u64,
    /// Wall time of this iteration's generate + sweep, µs.
    pub oracle_us: u64,
}

impl IterEvent {
    /// The event as a JSON object (one journal line).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let num = |v: u64| Json::Num(v as f64);
        Json::obj(vec![
            ("kind", Json::str("iteration")),
            ("seq", num(self.seq)),
            ("trace", num(self.trace)),
            ("iteration", num(u64::from(self.iteration))),
            ("accepted", Json::Bool(self.accepted)),
            ("edge", Json::Arr(vec![num(self.edge.0), num(self.edge.1)])),
            ("best_delay", Json::Num(self.best_delay)),
            ("delay_delta", Json::Num(self.delay_delta)),
            ("candidates_generated", num(self.candidates_generated)),
            ("candidates_scored", num(self.candidates_scored)),
            ("oracle_us", num(self.oracle_us)),
        ])
    }
}

/// A retained full-trace exemplar: the wide event plus every span the
/// request produced.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// Why the exemplar was kept: `"slow"`, `"error"`, `"degraded"`, or
    /// `"injected"`.
    pub reason: &'static str,
    /// The request's wide event.
    pub event: WideEvent,
    /// Every span recorded on the worker while it ran the request.
    pub spans: Vec<SpanRecord>,
}

impl Exemplar {
    /// The exemplar as a JSON object (one journal line).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut event = self.event.to_json();
        event.set("kind", Json::str("exemplar"));
        event.set("reason", Json::str(self.reason));
        event.set(
            "spans",
            Json::Arr(
                self.spans
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("name", Json::str(s.name)),
                            ("trace", Json::Num(s.trace as f64)),
                            ("depth", Json::Num(f64::from(s.depth))),
                            ("start_ns", Json::Num(s.start_ns as f64)),
                            ("dur_ns", Json::Num(s.dur_ns as f64)),
                        ])
                    })
                    .collect(),
            ),
        );
        event
    }
}

/// Slot states for the wait-free ring: a slot is either idle or briefly
/// held by exactly one writer/reader.
const SLOT_IDLE: u32 = 0;
const SLOT_BUSY: u32 = 1;

struct Slot<T> {
    state: AtomicU32,
    value: UnsafeCell<Option<T>>,
}

/// Counters describing a ring's lifetime traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingStats {
    /// Events successfully published (including since-overwritten ones).
    pub recorded: u64,
    /// Events dropped because the slot was momentarily held by another
    /// writer or a snapshot (bounded-overhead guarantee: never wait).
    pub dropped: u64,
}

/// A fixed-capacity, wait-free overwrite ring.
///
/// Writers take a ticket (`fetch_add`), claim `slot = ticket % cap` with
/// a single CAS, move the value in, and release. A failed claim —
/// another writer lapped onto the same slot, or a snapshot is reading
/// it — drops the event rather than spinning, so the hot path never
/// waits on anything. Snapshots claim slots the same way, cloning what
/// they find; a slot mid-write is simply skipped.
pub struct Ring<T> {
    slots: Box<[Slot<T>]>,
    next: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

// SAFETY: slot values are only touched between a successful
// IDLE -> BUSY CAS (acquire) and the matching BUSY -> IDLE release
// store, which gives the holder exclusive access.
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T: Clone> Ring<T> {
    /// A ring with `cap` slots (at least 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            slots: (0..cap)
                .map(|_| Slot {
                    state: AtomicU32::new(SLOT_IDLE),
                    value: UnsafeCell::new(None),
                })
                .collect(),
            next: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Publishes `make(ticket)` into the ring; returns the ticket. The
    /// closure runs before the slot claim so a dropped event still
    /// consumed a unique sequence number.
    pub fn push_with(&self, make: impl FnOnce(u64) -> T) -> u64 {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let value = make(ticket);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        if slot
            .state
            .compare_exchange(SLOT_IDLE, SLOT_BUSY, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: the CAS gives this thread exclusive slot access
            // until the release store below.
            unsafe { *slot.value.get() = Some(value) };
            slot.state.store(SLOT_IDLE, Ordering::Release);
            self.recorded.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ticket
    }

    /// Clones out every published event (unordered; callers sort by
    /// their own sequence field). Slots held by in-flight writers are
    /// skipped, never waited on.
    #[must_use]
    pub fn snapshot(&self) -> Vec<T> {
        let mut out = Vec::new();
        for slot in &self.slots {
            if slot
                .state
                .compare_exchange(SLOT_IDLE, SLOT_BUSY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: as in `push_with` — the CAS holds the slot.
                let value = unsafe { (*slot.value.get()).clone() };
                slot.state.store(SLOT_IDLE, Ordering::Release);
                if let Some(value) = value {
                    out.push(value);
                }
            }
        }
        out
    }

    /// Lifetime publish/drop counters.
    #[must_use]
    pub fn stats(&self) -> RingStats {
        RingStats {
            recorded: self.recorded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

impl<T> std::fmt::Debug for Ring<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("cap", &self.slots.len())
            .field("next", &self.next.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Default)]
struct ExemplarStore {
    /// Slowest-K exemplars, unordered; the floor tracks the minimum.
    slow: Vec<Exemplar>,
    /// Flagged exemplars (error/degraded/injected), capped.
    flagged: Vec<Exemplar>,
    flagged_dropped: u64,
}

/// The flight recorder: request + iteration rings and the tail-sampled
/// exemplar store.
#[derive(Debug)]
pub struct Journal {
    enabled: AtomicBool,
    requests: Ring<WideEvent>,
    iterations: Ring<IterEvent>,
    exemplars: Mutex<ExemplarStore>,
    /// `total_us` of the fastest retained slow exemplar once the slow
    /// set is full; requests at or below it skip the mutex entirely.
    slow_floor_us: AtomicU64,
}

impl Journal {
    /// A private journal (tests, embedded services).
    #[must_use]
    pub fn new(request_cap: usize, iteration_cap: usize) -> Self {
        Self {
            enabled: AtomicBool::new(true),
            requests: Ring::new(request_cap),
            iterations: Ring::new(iteration_cap),
            exemplars: Mutex::new(ExemplarStore::default()),
            slow_floor_us: AtomicU64::new(0),
        }
    }

    /// The process-wide journal every subsystem records into.
    #[must_use]
    pub fn global() -> &'static Journal {
        static GLOBAL: OnceLock<Journal> = OnceLock::new();
        GLOBAL.get_or_init(|| Journal::new(DEFAULT_REQUEST_CAP, DEFAULT_ITERATION_CAP))
    }

    /// Turns recording on or off (on by default).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is recording on?
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Push/drop counters of the request ring — cheap enough for a
    /// metrics scrape, unlike [`snapshot`](Self::snapshot) which
    /// clones both rings.
    #[must_use]
    pub fn request_ring_stats(&self) -> RingStats {
        self.requests.stats()
    }

    /// Push/drop counters of the iteration ring.
    #[must_use]
    pub fn iteration_ring_stats(&self) -> RingStats {
        self.iterations.stats()
    }

    /// Appends one wide event; returns its sequence number (0 when
    /// disabled).
    pub fn record_request(&self, mut event: WideEvent) -> u64 {
        if !self.enabled() {
            return 0;
        }
        self.requests.push_with(move |seq| {
            event.seq = seq;
            event
        })
    }

    /// Appends one LDRG iteration event.
    pub fn record_iteration(&self, mut event: IterEvent) {
        if !self.enabled() {
            return;
        }
        self.iterations.push_with(move |seq| {
            event.seq = seq;
            event
        });
    }

    /// Offers a request's full span trace for retention. Kept iff the
    /// event is flagged (error / degraded / injected fault) or slower
    /// than the current slowest-K floor; everything else is discarded
    /// after one atomic load.
    pub fn offer_exemplar(&self, event: WideEvent, spans: Vec<SpanRecord>) {
        if !self.enabled() {
            return;
        }
        let flagged = event.flagged();
        if !flagged {
            // Fast rejection: the slow set is full (floor > 0) and this
            // request is not slower than its fastest member.
            let floor = self.slow_floor_us.load(Ordering::Relaxed);
            if floor > 0 && event.total_us <= floor {
                return;
            }
        }
        let reason = if event.outcome != "ok" {
            "error"
        } else if event.injected_faults > 0 {
            "injected"
        } else if event.degradation_steps > 0 {
            "degraded"
        } else {
            "slow"
        };
        let exemplar = Exemplar {
            reason,
            event,
            spans,
        };
        let mut store = self.exemplars.lock().expect("exemplar store poisoned");
        if flagged {
            if store.flagged.len() < FLAGGED_EXEMPLARS {
                store.flagged.push(exemplar);
            } else {
                store.flagged_dropped += 1;
            }
            return;
        }
        if store.slow.len() < SLOW_EXEMPLARS {
            store.slow.push(exemplar);
        } else {
            let (min_idx, min_us) = store
                .slow
                .iter()
                .enumerate()
                .map(|(i, e)| (i, e.event.total_us))
                .min_by_key(|&(_, us)| us)
                .expect("slow set is non-empty");
            if exemplar.event.total_us > min_us {
                store.slow[min_idx] = exemplar;
            }
        }
        // Refresh the floor: once full, the minimum retained total_us.
        if store.slow.len() >= SLOW_EXEMPLARS {
            let floor = store
                .slow
                .iter()
                .map(|e| e.event.total_us)
                .min()
                .unwrap_or(0);
            self.slow_floor_us.store(floor, Ordering::Relaxed);
        }
    }

    /// A consistent-enough copy of everything the recorder holds.
    /// Non-destructive: repeated snapshots of a quiesced journal are
    /// identical (what the count-agreement acceptance test pins down).
    #[must_use]
    pub fn snapshot(&self) -> JournalSnapshot {
        let mut requests = self.requests.snapshot();
        requests.sort_by_key(|e| e.seq);
        let mut iterations = self.iterations.snapshot();
        iterations.sort_by_key(|e| e.seq);
        let (exemplars, exemplars_dropped) = {
            let store = self.exemplars.lock().expect("exemplar store poisoned");
            let mut all: Vec<Exemplar> = store
                .flagged
                .iter()
                .chain(store.slow.iter())
                .cloned()
                .collect();
            all.sort_by_key(|e| e.event.seq);
            (all, store.flagged_dropped)
        };
        JournalSnapshot {
            requests,
            iterations,
            exemplars,
            request_stats: self.requests.stats(),
            iteration_stats: self.iterations.stats(),
            exemplars_dropped,
        }
    }
}

/// A point-in-time copy of the journal's contents.
#[derive(Debug, Clone)]
pub struct JournalSnapshot {
    /// Retained wide events, oldest first.
    pub requests: Vec<WideEvent>,
    /// Retained iteration events, oldest first.
    pub iterations: Vec<IterEvent>,
    /// Retained exemplars (flagged + slow), oldest first.
    pub exemplars: Vec<Exemplar>,
    /// Lifetime request-ring counters.
    pub request_stats: RingStats,
    /// Lifetime iteration-ring counters.
    pub iteration_stats: RingStats,
    /// Flagged exemplars discarded because the store was full.
    pub exemplars_dropped: u64,
}

impl JournalSnapshot {
    /// The snapshot as one JSON object (the `{"op":"journal"}` body).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requests", Json::Num(self.requests.len() as f64)),
            ("iterations", Json::Num(self.iterations.len() as f64)),
            ("exemplars", Json::Num(self.exemplars.len() as f64)),
            (
                "requests_recorded",
                Json::Num(self.request_stats.recorded as f64),
            ),
            (
                "requests_dropped",
                Json::Num(self.request_stats.dropped as f64),
            ),
            (
                "iterations_recorded",
                Json::Num(self.iteration_stats.recorded as f64),
            ),
            (
                "iterations_dropped",
                Json::Num(self.iteration_stats.dropped as f64),
            ),
            (
                "exemplars_dropped",
                Json::Num(self.exemplars_dropped as f64),
            ),
            (
                "request_events",
                Json::Arr(self.requests.iter().map(WideEvent::to_json).collect()),
            ),
            (
                "iteration_events",
                Json::Arr(self.iterations.iter().map(IterEvent::to_json).collect()),
            ),
            (
                "exemplar_events",
                Json::Arr(self.exemplars.iter().map(Exemplar::to_json).collect()),
            ),
        ])
    }

    /// The snapshot as JSON-lines: one `"kind":"summary"` header, then
    /// one line per request / iteration / exemplar. This is the format
    /// of `route --journal-out`, `GET /journal`, and the post-mortem
    /// dump; [`check_journal_lines`] validates it.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        let summary = Json::obj(vec![
            ("kind", Json::str("summary")),
            ("requests", Json::Num(self.requests.len() as f64)),
            ("iterations", Json::Num(self.iterations.len() as f64)),
            ("exemplars", Json::Num(self.exemplars.len() as f64)),
            (
                "requests_recorded",
                Json::Num(self.request_stats.recorded as f64),
            ),
            (
                "requests_dropped",
                Json::Num(self.request_stats.dropped as f64),
            ),
            (
                "iterations_recorded",
                Json::Num(self.iteration_stats.recorded as f64),
            ),
            (
                "iterations_dropped",
                Json::Num(self.iteration_stats.dropped as f64),
            ),
            (
                "exemplars_dropped",
                Json::Num(self.exemplars_dropped as f64),
            ),
        ]);
        out.push_str(&summary.to_string());
        out.push('\n');
        for e in &self.requests {
            out.push_str(&e.to_json().to_string());
            out.push('\n');
        }
        for e in &self.iterations {
            out.push_str(&e.to_json().to_string());
            out.push('\n');
        }
        for e in &self.exemplars {
            out.push_str(&e.to_json().to_string());
            out.push('\n');
        }
        out
    }
}

/// Per-kind record counts found by [`check_journal_lines`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalCounts {
    /// `"kind":"request"` lines.
    pub requests: usize,
    /// `"kind":"iteration"` lines.
    pub iterations: usize,
    /// `"kind":"exemplar"` lines.
    pub exemplars: usize,
}

/// Strictly validates a journal JSON-lines dump (the sibling of
/// [`prometheus::check_exposition`](crate::prometheus::check_exposition)):
/// every line must parse, carry a known `kind`, and carry that kind's
/// required fields with the right types. Returns the per-kind counts.
///
/// # Errors
///
/// A human-readable description of the first offending line.
pub fn check_journal_lines(text: &str) -> Result<JournalCounts, String> {
    let mut counts = JournalCounts::default();
    let mut saw_summary = false;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: blank line in journal dump"));
        }
        let doc = Json::parse(line).map_err(|e| format!("line {lineno}: not valid JSON ({e})"))?;
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string field \"kind\""))?;
        let need_num = |field: &str| {
            doc.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {lineno}: {kind} line missing number {field:?}"))
        };
        let need_str = |field: &str| {
            doc.get(field)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("line {lineno}: {kind} line missing string {field:?}"))
        };
        let need_bool = |field: &str| {
            doc.get(field)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("line {lineno}: {kind} line missing bool {field:?}"))
        };
        match kind {
            "summary" => {
                if saw_summary {
                    return Err(format!("line {lineno}: duplicate summary line"));
                }
                saw_summary = true;
                for f in ["requests", "iterations", "exemplars", "requests_recorded"] {
                    need_num(f)?;
                }
            }
            "request" | "exemplar" => {
                for f in [
                    "seq",
                    "trace",
                    "net_hash",
                    "pins",
                    "degradation_steps",
                    "retries",
                    "injected_faults",
                    "queue_us",
                    "route_us",
                    "total_us",
                    "candidates_generated",
                    "candidates_scored",
                    "ldrg_iterations",
                ] {
                    need_num(f)?;
                }
                for f in [
                    "algorithm",
                    "outcome",
                    "fidelity_requested",
                    "fidelity_served",
                ] {
                    need_str(f)?;
                }
                need_bool("cache_hit")?;
                need_bool("coalesced")?;
                if !matches!(doc.get("rungs"), Some(Json::Arr(_))) {
                    return Err(format!(
                        "line {lineno}: {kind} line missing array \"rungs\""
                    ));
                }
                if kind == "exemplar" {
                    need_str("reason")?;
                    let Some(Json::Arr(spans)) = doc.get("spans") else {
                        return Err(format!("line {lineno}: exemplar missing array \"spans\""));
                    };
                    for s in spans {
                        for f in ["start_ns", "dur_ns", "depth", "trace"] {
                            s.get(f).and_then(Json::as_f64).ok_or_else(|| {
                                format!("line {lineno}: exemplar span missing number {f:?}")
                            })?;
                        }
                        s.get("name").and_then(Json::as_str).ok_or_else(|| {
                            format!("line {lineno}: exemplar span missing string \"name\"")
                        })?;
                    }
                    counts.exemplars += 1;
                } else {
                    counts.requests += 1;
                }
            }
            "iteration" => {
                for f in [
                    "seq",
                    "trace",
                    "iteration",
                    "best_delay",
                    "delay_delta",
                    "candidates_generated",
                    "candidates_scored",
                    "oracle_us",
                ] {
                    need_num(f)?;
                }
                need_bool("accepted")?;
                if !matches!(doc.get("edge"), Some(Json::Arr(e)) if e.len() == 2) {
                    return Err(format!(
                        "line {lineno}: iteration line missing 2-element array \"edge\""
                    ));
                }
                counts.iterations += 1;
            }
            other => {
                return Err(format!("line {lineno}: unknown journal kind {other:?}"));
            }
        }
    }
    if !saw_summary {
        return Err("journal dump has no summary line".to_owned());
    }
    Ok(counts)
}

// ---------------------------------------------------------------------
// Per-rung attempt timings: a thread-local scratch filled by
// `route_one`'s ladder loop and collected by whoever assembles the
// request's wide event (the server worker or the route CLI).

thread_local! {
    static RUNGS: RefCell<Vec<RungTiming>> = const { RefCell::new(Vec::new()) };
}

/// Clears this thread's rung scratch; `route_one` calls it on entry so
/// a request only ever sees its own attempts.
pub fn begin_rungs() {
    RUNGS.with(|r| r.borrow_mut().clear());
}

/// Appends one ladder attempt to this thread's rung scratch.
pub fn record_rung(fidelity: &'static str, micros: u64) {
    RUNGS.with(|r| {
        let mut rungs = r.borrow_mut();
        // A runaway ladder cannot grow past the rung count × retries;
        // the cap is pure defense.
        if rungs.len() < 64 {
            rungs.push(RungTiming { fidelity, micros });
        }
    });
}

/// Takes (and clears) this thread's rung scratch.
#[must_use]
pub fn take_rungs() -> Vec<RungTiming> {
    RUNGS.with(|r| std::mem::take(&mut *r.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(total_us: u64) -> WideEvent {
        WideEvent {
            algorithm: "ldrg",
            fidelity_requested: "moment",
            fidelity_served: "moment",
            total_us,
            ..WideEvent::default()
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let ring: Ring<u64> = Ring::new(4);
        for i in 0..10u64 {
            ring.push_with(|_| i);
        }
        let mut snap = ring.snapshot();
        snap.sort_unstable();
        assert_eq!(snap, vec![6, 7, 8, 9]);
        let stats = ring.stats();
        assert_eq!(stats.recorded, 10);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn concurrent_pushes_never_lose_more_than_they_drop() {
        let ring: std::sync::Arc<Ring<u64>> = std::sync::Arc::new(Ring::new(64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        ring.push_with(|_| i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = ring.stats();
        assert_eq!(stats.recorded + stats.dropped, 4000);
        assert!(ring.snapshot().len() <= 64);
    }

    #[test]
    fn journal_assigns_monotone_seqs_and_sorts_snapshots() {
        let j = Journal::new(8, 8);
        for i in 0..5 {
            j.record_request(event(i));
        }
        let snap = j.snapshot();
        assert_eq!(snap.requests.len(), 5);
        let seqs: Vec<u64> = snap.requests.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(snap.request_stats.recorded, 5);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let j = Journal::new(8, 8);
        j.set_enabled(false);
        j.record_request(event(10));
        j.record_iteration(IterEvent {
            seq: 0,
            trace: 0,
            iteration: 0,
            accepted: false,
            edge: (0, 0),
            best_delay: 0.0,
            delay_delta: 0.0,
            candidates_generated: 0,
            candidates_scored: 0,
            oracle_us: 0,
        });
        j.offer_exemplar(event(10), Vec::new());
        let snap = j.snapshot();
        assert!(snap.requests.is_empty());
        assert!(snap.iterations.is_empty());
        assert!(snap.exemplars.is_empty());
    }

    #[test]
    fn flagged_exemplars_are_always_kept() {
        let j = Journal::new(8, 8);
        let mut degraded = event(1);
        degraded.degradation_steps = 2;
        j.offer_exemplar(degraded, Vec::new());
        let mut errored = event(1);
        errored.outcome = "route_error";
        j.offer_exemplar(errored, Vec::new());
        let snap = j.snapshot();
        assert_eq!(snap.exemplars.len(), 2);
        let reasons: Vec<_> = snap.exemplars.iter().map(|e| e.reason).collect();
        assert!(reasons.contains(&"degraded"));
        assert!(reasons.contains(&"error"));
    }

    #[test]
    fn slow_set_keeps_the_slowest_k() {
        let j = Journal::new(1024, 8);
        for us in 1..=100u64 {
            j.offer_exemplar(event(us), Vec::new());
        }
        let snap = j.snapshot();
        assert_eq!(snap.exemplars.len(), SLOW_EXEMPLARS);
        let mut kept: Vec<u64> = snap.exemplars.iter().map(|e| e.event.total_us).collect();
        kept.sort_unstable();
        let expected: Vec<u64> = (100 - SLOW_EXEMPLARS as u64 + 1..=100).collect();
        assert_eq!(kept, expected);
    }

    #[test]
    fn json_lines_round_trip_through_the_checker() {
        let j = Journal::new(16, 16);
        let mut ev = event(50);
        ev.rungs = vec![RungTiming {
            fidelity: "moment",
            micros: 42,
        }];
        j.record_request(ev.clone());
        j.record_iteration(IterEvent {
            seq: 0,
            trace: 7,
            iteration: 0,
            accepted: true,
            edge: (1, 3),
            best_delay: 1e-9,
            delay_delta: 2e-10,
            candidates_generated: 20,
            candidates_scored: 20,
            oracle_us: 120,
        });
        ev.degradation_steps = 1;
        j.offer_exemplar(
            ev,
            vec![SpanRecord {
                name: "route_one",
                trace: 7,
                thread: 1,
                depth: 0,
                start_ns: 10,
                dur_ns: 90,
            }],
        );
        let lines = j.snapshot().to_json_lines();
        let counts = check_journal_lines(&lines).unwrap();
        assert_eq!(counts.requests, 1);
        assert_eq!(counts.iterations, 1);
        assert_eq!(counts.exemplars, 1);
    }

    #[test]
    fn checker_rejects_malformed_dumps() {
        assert!(check_journal_lines("").is_err()); // no summary
        assert!(check_journal_lines("{\"kind\":\"summary\"}").is_err()); // missing counts
        assert!(check_journal_lines("not json\n").is_err());
        let ok = Journal::new(4, 4).snapshot().to_json_lines();
        assert!(check_journal_lines(&ok).is_ok());
        let with_garbage = format!("{ok}{{\"kind\":\"martian\"}}\n");
        assert!(check_journal_lines(&with_garbage).is_err());
    }

    #[test]
    fn rung_scratch_is_per_thread_and_clears() {
        begin_rungs();
        record_rung("transient", 100);
        record_rung("moment", 50);
        let rungs = take_rungs();
        assert_eq!(rungs.len(), 2);
        assert_eq!(rungs[0].fidelity, "transient");
        assert!(take_rungs().is_empty());
        std::thread::spawn(|| {
            assert!(take_rungs().is_empty());
        })
        .join()
        .unwrap();
    }
}
