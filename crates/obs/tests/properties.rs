//! Property-based checks of the power-of-two latency histogram: bucket
//! boundaries, percentile ordering, and merge equivalence — and of the
//! sliding-window ring built on it: rotation keeps percentiles
//! monotone, the live merge equals the concatenated live samples, and
//! expired windows stop influencing the answer.

use std::time::Duration;

use ntr_obs::metrics::{Histogram, WindowedHistogram, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// A histogram loaded with the given samples.
fn histogram_of(samples: &[u64]) -> Histogram {
    let h = Histogram::default();
    for &s in samples {
        h.record_micros(s);
    }
    h
}

/// A windowed ring with `batches[i]` recorded into window index `i`,
/// via the deterministic entry point (no clock involved).
fn windowed_of(windows: usize, batches: &[Vec<u64>]) -> WindowedHistogram {
    let w = WindowedHistogram::new(windows, Duration::from_secs(60));
    for (i, batch) in batches.iter().enumerate() {
        for &s in batch {
            w.record_micros_at(i as u64, s);
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every sample lands in the bucket whose half-open power-of-two
    /// range `[2^i, 2^(i+1))` contains it; the last bucket absorbs the
    /// overflow tail, and bucket 0 takes sub-microsecond samples.
    #[test]
    fn bucket_boundaries_are_powers_of_two(micros in 0u64..u64::MAX) {
        let i = Histogram::bucket_of(micros);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        if i < HISTOGRAM_BUCKETS - 1 {
            prop_assert!(micros < Histogram::bucket_upper_bound(i),
                "{micros} below upper bound of bucket {i}");
        }
        if i > 0 {
            prop_assert!(micros >= Histogram::bucket_upper_bound(i - 1),
                "{micros} at or above lower bound of bucket {i}");
        }
    }

    /// Exact powers of two open a new bucket: 2^k is the first value of
    /// bucket k, and 2^k - 1 is the last value of bucket k-1.
    #[test]
    fn power_of_two_samples_open_their_bucket(k in 1u32..HISTOGRAM_BUCKETS as u32 - 1) {
        let v = 1u64 << k;
        prop_assert_eq!(Histogram::bucket_of(v), k as usize);
        prop_assert_eq!(Histogram::bucket_of(v - 1), k as usize - 1);
    }

    /// Percentiles never run backwards: p50 ≤ p90 ≤ p99, and every
    /// interpolated percentile lands inside a bucket that actually holds
    /// samples (the answer is never pulled outside the recorded data's
    /// own power-of-two ranges).
    #[test]
    fn percentiles_are_monotone(samples in proptest::collection::vec(0u64..1_000_000_000, 1..200)) {
        let h = histogram_of(&samples);
        let (p50, p90, p99) = (
            h.percentile_micros(50.0),
            h.percentile_micros(90.0),
            h.percentile_micros(99.0),
        );
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        let counts = h.bucket_counts();
        let in_nonempty_bucket = |v: u64| (0..HISTOGRAM_BUCKETS).any(|i| {
            let lower = if i == 0 { 0 } else { Histogram::bucket_upper_bound(i - 1) };
            counts[i] > 0 && v >= lower && v <= Histogram::bucket_upper_bound(i)
        });
        for (label, v) in [("p50", p50), ("p90", p90), ("p99", p99)] {
            prop_assert!(in_nonempty_bucket(v), "{label} {v} outside all nonempty buckets");
        }
    }

    /// Merging two histograms is indistinguishable from recording the
    /// concatenated sample stream into one: same buckets, count, sum,
    /// and therefore same percentiles.
    #[test]
    fn merge_equals_concatenated_samples(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..100),
    ) {
        let merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));

        let concatenated: Vec<u64> = a.iter().chain(&b).copied().collect();
        let expected = histogram_of(&concatenated);

        prop_assert_eq!(merged.bucket_counts(), expected.bucket_counts());
        prop_assert_eq!(merged.count(), expected.count());
        prop_assert_eq!(merged.sum_micros(), expected.sum_micros());
        for p in [50.0, 90.0, 99.0] {
            prop_assert_eq!(merged.percentile_micros(p), expected.percentile_micros(p));
        }
    }

    /// Rotation never breaks percentile ordering: however the sample
    /// stream is scattered across window indices (with slots being
    /// reused and reset along the way), the live merge still reports
    /// p50 ≤ p90 ≤ p99.
    #[test]
    fn windowed_rotation_preserves_percentile_order(
        windows in 1usize..6,
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000_000, 0..30), 1..12),
    ) {
        let w = windowed_of(windows, &batches);
        let live = w.sliding_at(batches.len() as u64 - 1);
        let (p50, p90, p99) = (
            live.percentile_micros(50.0),
            live.percentile_micros(90.0),
            live.percentile_micros(99.0),
        );
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90} after rotation");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99} after rotation");
    }

    /// The sliding merge is exactly the histogram of the concatenated
    /// samples of the windows still live at the query index — same
    /// buckets, count, sum, percentiles. Windows older than one lap
    /// have been rotated out and contribute nothing.
    #[test]
    fn windowed_merge_equals_concatenated_live_windows(
        windows in 1usize..6,
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000_000, 0..30), 1..12),
    ) {
        let w = windowed_of(windows, &batches);
        let last = batches.len() - 1;
        // Live indices at `last`: the most recent `windows` of them.
        let live_from = (last + 1).saturating_sub(windows);
        let concatenated: Vec<u64> = batches[live_from..=last]
            .iter()
            .flatten()
            .copied()
            .collect();
        let expected = histogram_of(&concatenated);
        let merged = w.sliding_at(last as u64);
        prop_assert_eq!(merged.bucket_counts(), expected.bucket_counts());
        prop_assert_eq!(merged.count(), expected.count());
        prop_assert_eq!(merged.sum_micros(), expected.sum_micros());
        for p in [50.0, 90.0, 99.0] {
            prop_assert_eq!(merged.percentile_micros(p), expected.percentile_micros(p));
        }
    }

    /// Once the clock laps a window, its samples stop influencing the
    /// sliding percentiles entirely: huge old samples recorded one lap
    /// ago cannot drag up the percentiles of the small fresh ones.
    #[test]
    fn windowed_expired_samples_stop_influencing_percentiles(
        windows in 1usize..6,
        old in proptest::collection::vec(500_000_000u64..1_000_000_000, 1..30),
        fresh in proptest::collection::vec(0u64..1_000, 1..30),
        gap in 0u64..5,
    ) {
        let w = WindowedHistogram::new(windows, Duration::from_secs(60));
        for &s in &old {
            w.record_micros_at(0, s);
        }
        // The first index at which window 0 has expired, plus some gap.
        let later = windows as u64 + gap;
        for &s in &fresh {
            w.record_micros_at(later, s);
        }
        let live = w.sliding_at(later);
        prop_assert_eq!(live.count(), fresh.len() as u64);
        let expected = histogram_of(&fresh);
        prop_assert_eq!(live.bucket_counts(), expected.bucket_counts());
        // Every fresh sample is < 1 ms; every old one ≥ 500 s worth of
        // µs. A p99 still inside the sub-millisecond buckets proves the
        // old lap is gone.
        let sub_ms_cap = Histogram::bucket_upper_bound(Histogram::bucket_of(999));
        prop_assert!(
            live.percentile_micros(99.0) <= sub_ms_cap,
            "expired samples leaked into p99"
        );
    }
}
