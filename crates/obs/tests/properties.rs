//! Property-based checks of the power-of-two latency histogram: bucket
//! boundaries, percentile ordering, and merge equivalence — and of the
//! sliding-window ring built on it: rotation keeps percentiles
//! monotone, the live merge equals the concatenated live samples, and
//! expired windows stop influencing the answer.
//!
//! Plus the continuous-observability stores built on the same
//! stamped-slot idiom: TSDB rollups must equal the aggregate of the
//! raw ring over the same span (with expiry excluding stale laps and
//! empty buckets absent, not zero), and the SLO engine's burn-rate
//! alerting must track a from-scratch reference model exactly — fire
//! iff both windows exceed the threshold, clear with hysteresis.

use std::collections::BTreeMap;
use std::time::Duration;

use ntr_obs::metrics::{Histogram, WindowedHistogram, HISTOGRAM_BUCKETS};
use ntr_obs::slo::{BurnRule, SloEngine, SloKind, SloSpec};
use ntr_obs::tsdb::{Resolution, Tsdb};
use proptest::prelude::*;

/// A histogram loaded with the given samples.
fn histogram_of(samples: &[u64]) -> Histogram {
    let h = Histogram::default();
    for &s in samples {
        h.record_micros(s);
    }
    h
}

/// A windowed ring with `batches[i]` recorded into window index `i`,
/// via the deterministic entry point (no clock involved).
fn windowed_of(windows: usize, batches: &[Vec<u64>]) -> WindowedHistogram {
    let w = WindowedHistogram::new(windows, Duration::from_secs(60));
    for (i, batch) in batches.iter().enumerate() {
        for &s in batch {
            w.record_micros_at(i as u64, s);
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every sample lands in the bucket whose half-open power-of-two
    /// range `[2^i, 2^(i+1))` contains it; the last bucket absorbs the
    /// overflow tail, and bucket 0 takes sub-microsecond samples.
    #[test]
    fn bucket_boundaries_are_powers_of_two(micros in 0u64..u64::MAX) {
        let i = Histogram::bucket_of(micros);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        if i < HISTOGRAM_BUCKETS - 1 {
            prop_assert!(micros < Histogram::bucket_upper_bound(i),
                "{micros} below upper bound of bucket {i}");
        }
        if i > 0 {
            prop_assert!(micros >= Histogram::bucket_upper_bound(i - 1),
                "{micros} at or above lower bound of bucket {i}");
        }
    }

    /// Exact powers of two open a new bucket: 2^k is the first value of
    /// bucket k, and 2^k - 1 is the last value of bucket k-1.
    #[test]
    fn power_of_two_samples_open_their_bucket(k in 1u32..HISTOGRAM_BUCKETS as u32 - 1) {
        let v = 1u64 << k;
        prop_assert_eq!(Histogram::bucket_of(v), k as usize);
        prop_assert_eq!(Histogram::bucket_of(v - 1), k as usize - 1);
    }

    /// Percentiles never run backwards: p50 ≤ p90 ≤ p99, and every
    /// interpolated percentile lands inside a bucket that actually holds
    /// samples (the answer is never pulled outside the recorded data's
    /// own power-of-two ranges).
    #[test]
    fn percentiles_are_monotone(samples in proptest::collection::vec(0u64..1_000_000_000, 1..200)) {
        let h = histogram_of(&samples);
        let (p50, p90, p99) = (
            h.percentile_micros(50.0),
            h.percentile_micros(90.0),
            h.percentile_micros(99.0),
        );
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        let counts = h.bucket_counts();
        let in_nonempty_bucket = |v: u64| (0..HISTOGRAM_BUCKETS).any(|i| {
            let lower = if i == 0 { 0 } else { Histogram::bucket_upper_bound(i - 1) };
            counts[i] > 0 && v >= lower && v <= Histogram::bucket_upper_bound(i)
        });
        for (label, v) in [("p50", p50), ("p90", p90), ("p99", p99)] {
            prop_assert!(in_nonempty_bucket(v), "{label} {v} outside all nonempty buckets");
        }
    }

    /// Merging two histograms is indistinguishable from recording the
    /// concatenated sample stream into one: same buckets, count, sum,
    /// and therefore same percentiles.
    #[test]
    fn merge_equals_concatenated_samples(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..100),
    ) {
        let merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));

        let concatenated: Vec<u64> = a.iter().chain(&b).copied().collect();
        let expected = histogram_of(&concatenated);

        prop_assert_eq!(merged.bucket_counts(), expected.bucket_counts());
        prop_assert_eq!(merged.count(), expected.count());
        prop_assert_eq!(merged.sum_micros(), expected.sum_micros());
        for p in [50.0, 90.0, 99.0] {
            prop_assert_eq!(merged.percentile_micros(p), expected.percentile_micros(p));
        }
    }

    /// Rotation never breaks percentile ordering: however the sample
    /// stream is scattered across window indices (with slots being
    /// reused and reset along the way), the live merge still reports
    /// p50 ≤ p90 ≤ p99.
    #[test]
    fn windowed_rotation_preserves_percentile_order(
        windows in 1usize..6,
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000_000, 0..30), 1..12),
    ) {
        let w = windowed_of(windows, &batches);
        let live = w.sliding_at(batches.len() as u64 - 1);
        let (p50, p90, p99) = (
            live.percentile_micros(50.0),
            live.percentile_micros(90.0),
            live.percentile_micros(99.0),
        );
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90} after rotation");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99} after rotation");
    }

    /// The sliding merge is exactly the histogram of the concatenated
    /// samples of the windows still live at the query index — same
    /// buckets, count, sum, percentiles. Windows older than one lap
    /// have been rotated out and contribute nothing.
    #[test]
    fn windowed_merge_equals_concatenated_live_windows(
        windows in 1usize..6,
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000_000, 0..30), 1..12),
    ) {
        let w = windowed_of(windows, &batches);
        let last = batches.len() - 1;
        // Live indices at `last`: the most recent `windows` of them.
        let live_from = (last + 1).saturating_sub(windows);
        let concatenated: Vec<u64> = batches[live_from..=last]
            .iter()
            .flatten()
            .copied()
            .collect();
        let expected = histogram_of(&concatenated);
        let merged = w.sliding_at(last as u64);
        prop_assert_eq!(merged.bucket_counts(), expected.bucket_counts());
        prop_assert_eq!(merged.count(), expected.count());
        prop_assert_eq!(merged.sum_micros(), expected.sum_micros());
        for p in [50.0, 90.0, 99.0] {
            prop_assert_eq!(merged.percentile_micros(p), expected.percentile_micros(p));
        }
    }

    /// Once the clock laps a window, its samples stop influencing the
    /// sliding percentiles entirely: huge old samples recorded one lap
    /// ago cannot drag up the percentiles of the small fresh ones.
    #[test]
    fn windowed_expired_samples_stop_influencing_percentiles(
        windows in 1usize..6,
        old in proptest::collection::vec(500_000_000u64..1_000_000_000, 1..30),
        fresh in proptest::collection::vec(0u64..1_000, 1..30),
        gap in 0u64..5,
    ) {
        let w = WindowedHistogram::new(windows, Duration::from_secs(60));
        for &s in &old {
            w.record_micros_at(0, s);
        }
        // The first index at which window 0 has expired, plus some gap.
        let later = windows as u64 + gap;
        for &s in &fresh {
            w.record_micros_at(later, s);
        }
        let live = w.sliding_at(later);
        prop_assert_eq!(live.count(), fresh.len() as u64);
        let expected = histogram_of(&fresh);
        prop_assert_eq!(live.bucket_counts(), expected.bucket_counts());
        // Every fresh sample is < 1 ms; every old one ≥ 500 s worth of
        // µs. A p99 still inside the sub-millisecond buckets proves the
        // old lap is gone.
        let sub_ms_cap = Histogram::bucket_upper_bound(Histogram::bucket_of(999));
        prop_assert!(
            live.percentile_micros(99.0) <= sub_ms_cap,
            "expired samples leaked into p99"
        );
    }
}

/// A two-tier store where both rings comfortably retain the whole
/// 0..500 s test horizon, so rollup comparisons never race expiry
/// (expiry gets its own dedicated property below).
fn two_tier(coarse_period: u64) -> Tsdb {
    Tsdb::new(&[
        Resolution {
            period_secs: 1,
            slots: 512,
        },
        Resolution {
            period_secs: coarse_period,
            slots: 512,
        },
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The downsampled series is the aggregate of the raw ring over
    /// each coarse bucket's span: counts and sums add up, min/max are
    /// the extremes of the raw extremes, and `last` is the raw `last`
    /// of the latest raw bucket. No separately-scheduled compaction,
    /// so nothing to drift.
    #[test]
    fn tsdb_rollups_aggregate_the_raw_ring(
        coarse_period in 2u64..20,
        samples in proptest::collection::vec((0u64..500, 0u64..2000), 1..150),
    ) {
        let db = two_tier(coarse_period);
        // A monotone time stream, like the snapshotter produces.
        // Values span negative and positive (gauges go both ways).
        let mut samples: Vec<(u64, f64)> = samples
            .into_iter()
            .map(|(t, v)| (t, v as f64 - 1000.0))
            .collect();
        samples.sort_by(|a, b| a.0.cmp(&b.0));
        let now = samples.last().expect("nonempty").0;
        for &(t, v) in &samples {
            db.record_at("m", t, v);
        }
        let raw = db.query_at("m", 1, now).expect("raw series");
        let coarse = db.query_at("m", coarse_period, now).expect("coarse series");
        for c in &coarse {
            let span: Vec<_> = raw
                .iter()
                .filter(|p| p.t_secs >= c.t_secs && p.t_secs < c.t_secs + coarse_period)
                .collect();
            prop_assert!(!span.is_empty(), "coarse bucket at {} with no raw points", c.t_secs);
            prop_assert_eq!(c.count, span.iter().map(|p| p.count).sum::<u64>());
            let sum: f64 = span.iter().map(|p| p.sum).sum();
            prop_assert!((c.sum - sum).abs() < 1e-6, "sum {} != {}", c.sum, sum);
            let min = span.iter().map(|p| p.min).fold(f64::INFINITY, f64::min);
            let max = span.iter().map(|p| p.max).fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(c.min, min);
            prop_assert_eq!(c.max, max);
            prop_assert_eq!(c.last, span.last().expect("nonempty span").last);
        }
        // And the other direction: every raw point is covered by
        // exactly one coarse bucket.
        let raw_count: u64 = raw.iter().map(|p| p.count).sum();
        let coarse_count: u64 = coarse.iter().map(|p| p.count).sum();
        prop_assert_eq!(raw_count, coarse_count);
    }

    /// Ring expiry: once the clock laps the raw ring, old samples are
    /// excluded from the answer — and a stale slot can never shadow a
    /// fresh one.
    #[test]
    fn tsdb_expiry_excludes_stale_points(
        slots in 4usize..40,
        old_ts in proptest::collection::vec(0u64..50, 1..20),
        gap in 0u64..30,
    ) {
        let db = Tsdb::new(&[Resolution { period_secs: 1, slots }]);
        for &t in &old_ts {
            db.record_at("m", t, 1.0);
        }
        let oldest_live = old_ts.iter().max().expect("nonempty") + gap + slots as u64;
        let fresh_t = oldest_live + 1;
        db.record_at("m", fresh_t, 2.0);
        let points = db.query_at("m", 1, fresh_t).expect("series");
        prop_assert_eq!(points.len(), 1, "stale laps leaked: {:?}", points);
        prop_assert_eq!(points[0].t_secs, fresh_t);
    }

    /// Buckets nothing was recorded into are absent from the answer —
    /// not zero-filled — and the present ones are exactly the distinct
    /// recorded seconds, in order.
    #[test]
    fn tsdb_empty_windows_are_absent(
        raw_ts in proptest::collection::vec(0u64..200, 1..40),
    ) {
        let ts: std::collections::BTreeSet<u64> = raw_ts.into_iter().collect();
        let db = Tsdb::new(&[Resolution { period_secs: 1, slots: 256 }]);
        for &t in &ts {
            db.record_at("m", t, t as f64);
        }
        let now = *ts.iter().max().expect("nonempty");
        let points = db.query_at("m", 1, now).expect("series");
        let expected: Vec<u64> = ts.iter().copied().collect();
        prop_assert_eq!(
            points.iter().map(|p| p.t_secs).collect::<Vec<_>>(),
            expected
        );
        prop_assert!(points.iter().all(|p| p.count >= 1));
    }

    /// The burn-rate alert tracks a from-scratch reference model
    /// exactly, at every second of an arbitrary good/bad traffic
    /// shape: it fires iff *both* windows reach the fire threshold,
    /// holds while either window still burns past the clear
    /// threshold (hysteresis), and edge-counts every transition.
    #[test]
    fn burn_rate_alerts_match_the_reference_model(
        fast in 1u64..5,
        slow_extra in 0u64..15,
        objective_tenths in 900u64..999,
        seconds in proptest::collection::vec((0u8..20, 0u8..20), 1..80),
    ) {
        let fast_secs = fast;
        let slow_secs = fast + slow_extra;
        let window_secs = slow_secs.max(30);
        let objective_pct = objective_tenths as f64 / 10.0;
        let spec = SloSpec {
            name: "prop".to_owned(),
            kind: SloKind::Availability,
            objective_pct,
            window_secs,
            fast_secs,
            slow_secs,
        };
        let rule = BurnRule::default();
        let engine = SloEngine::new(vec![spec], rule);

        let mut history: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut model_firing = false;
        let (mut model_fired, mut model_cleared) = (0u64, 0u64);
        let budget = 1.0 - objective_pct / 100.0;
        for (t, &(good, bad)) in seconds.iter().enumerate() {
            let t = t as u64;
            for _ in 0..good {
                engine.record_at(t, true, 0);
            }
            for _ in 0..bad {
                engine.record_at(t, false, 0);
            }
            let entry = history.entry(t).or_insert((0, 0));
            entry.0 += u64::from(good);
            entry.1 += u64::from(good) + u64::from(bad);

            let burn_over = |w: u64| {
                let from = (t + 1).saturating_sub(w);
                let (mut g, mut n) = (0u64, 0u64);
                for (_, &(wg, wn)) in history.range(from..=t) {
                    g += wg;
                    n += wn;
                }
                if n == 0 {
                    0.0
                } else {
                    ((n - g) as f64 / n as f64) / budget
                }
            };
            let (fast_burn, slow_burn) = (burn_over(fast_secs), burn_over(slow_secs));
            if !model_firing && fast_burn >= rule.fire && slow_burn >= rule.fire {
                model_firing = true;
                model_fired += 1;
            } else if model_firing && fast_burn < rule.clear && slow_burn < rule.clear {
                model_firing = false;
                model_cleared += 1;
            }

            engine.evaluate_at(t);
            let snap = &engine.snapshot_at(t)[0];
            prop_assert_eq!(
                snap.firing, model_firing,
                "firing diverged at t={} (fast {:.2} slow {:.2})", t, fast_burn, slow_burn
            );
            prop_assert_eq!(snap.fired_total, model_fired);
            prop_assert_eq!(snap.cleared_total, model_cleared);
            prop_assert!((snap.fast_burn - fast_burn).abs() < 1e-9);
            prop_assert!((snap.slow_burn - slow_burn).abs() < 1e-9);
        }
    }
}
