//! Property-based checks of the power-of-two latency histogram: bucket
//! boundaries, percentile ordering, and merge equivalence.

use ntr_obs::metrics::{Histogram, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// A histogram loaded with the given samples.
fn histogram_of(samples: &[u64]) -> Histogram {
    let h = Histogram::default();
    for &s in samples {
        h.record_micros(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every sample lands in the bucket whose half-open power-of-two
    /// range `[2^i, 2^(i+1))` contains it; the last bucket absorbs the
    /// overflow tail, and bucket 0 takes sub-microsecond samples.
    #[test]
    fn bucket_boundaries_are_powers_of_two(micros in 0u64..u64::MAX) {
        let i = Histogram::bucket_of(micros);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        if i < HISTOGRAM_BUCKETS - 1 {
            prop_assert!(micros < Histogram::bucket_upper_bound(i),
                "{micros} below upper bound of bucket {i}");
        }
        if i > 0 {
            prop_assert!(micros >= Histogram::bucket_upper_bound(i - 1),
                "{micros} at or above lower bound of bucket {i}");
        }
    }

    /// Exact powers of two open a new bucket: 2^k is the first value of
    /// bucket k, and 2^k - 1 is the last value of bucket k-1.
    #[test]
    fn power_of_two_samples_open_their_bucket(k in 1u32..HISTOGRAM_BUCKETS as u32 - 1) {
        let v = 1u64 << k;
        prop_assert_eq!(Histogram::bucket_of(v), k as usize);
        prop_assert_eq!(Histogram::bucket_of(v - 1), k as usize - 1);
    }

    /// Percentiles never run backwards: p50 ≤ p90 ≤ p99, and every
    /// interpolated percentile lands inside a bucket that actually holds
    /// samples (the answer is never pulled outside the recorded data's
    /// own power-of-two ranges).
    #[test]
    fn percentiles_are_monotone(samples in proptest::collection::vec(0u64..1_000_000_000, 1..200)) {
        let h = histogram_of(&samples);
        let (p50, p90, p99) = (
            h.percentile_micros(50.0),
            h.percentile_micros(90.0),
            h.percentile_micros(99.0),
        );
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        let counts = h.bucket_counts();
        let in_nonempty_bucket = |v: u64| (0..HISTOGRAM_BUCKETS).any(|i| {
            let lower = if i == 0 { 0 } else { Histogram::bucket_upper_bound(i - 1) };
            counts[i] > 0 && v >= lower && v <= Histogram::bucket_upper_bound(i)
        });
        for (label, v) in [("p50", p50), ("p90", p90), ("p99", p99)] {
            prop_assert!(in_nonempty_bucket(v), "{label} {v} outside all nonempty buckets");
        }
    }

    /// Merging two histograms is indistinguishable from recording the
    /// concatenated sample stream into one: same buckets, count, sum,
    /// and therefore same percentiles.
    #[test]
    fn merge_equals_concatenated_samples(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..100),
    ) {
        let merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));

        let concatenated: Vec<u64> = a.iter().chain(&b).copied().collect();
        let expected = histogram_of(&concatenated);

        prop_assert_eq!(merged.bucket_counts(), expected.bucket_counts());
        prop_assert_eq!(merged.count(), expected.count());
        prop_assert_eq!(merged.sum_micros(), expected.sum_micros());
        for p in [50.0, 90.0, 99.0] {
            prop_assert_eq!(merged.percentile_micros(p), expected.percentile_micros(p));
        }
    }
}
