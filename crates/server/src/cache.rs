//! Content-addressed LRU result cache.
//!
//! Keys are 64-bit canonical hashes (see
//! [`ntr_core::canonical_net_hash`] mixed with the request options), so
//! two requests for the same net — pins permuted, `-0.0` vs `0.0` — hit
//! the same entry. Values are the routed response bodies.

use std::collections::HashMap;

/// A fixed-capacity least-recently-used map keyed by `u64` hashes.
///
/// Recency is tracked with a monotonic tick per access; eviction scans
/// for the smallest tick. The scan is O(len), which is fine at the
/// few-thousand-entry capacities a routing cache runs at — entries are
/// whole routed nets, not bytes.
#[derive(Debug)]
pub struct LruCache<V> {
    map: HashMap<u64, (V, u64)>,
    tick: u64,
    capacity: usize,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of
    /// zero disables the cache: every `get` misses and `insert` is a
    /// no-op.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(4096)),
            tick: 0,
            capacity,
        }
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key) {
            Some((value, last_used)) => {
                *last_used = tick;
                Some(value)
            }
            None => None,
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when the cache is full.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(&oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| k)
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, "a");
        assert_eq!(c.get(1), Some(&"a"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.get(1); // 2 is now the LRU entry
        c.insert(3, "c");
        assert_eq!(c.get(1), Some(&"a"));
        assert!(c.get(2).is_none(), "LRU entry should have been evicted");
        assert_eq!(c.get(3), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(1, "a2"); // refresh, not a third entry
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some(&"a2"));
        assert_eq!(c.get(2), Some(&"b"));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert(1, "a");
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }
}
