//! Transports: JSON-lines over stdin/stdout or TCP.
//!
//! Both transports share one [`Service`]; responses are written
//! line-buffered under a mutex, so replies from different workers
//! interleave at line granularity and never corrupt each other.
//! Responses may arrive out of request order — clients correlate by
//! `id`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::Json;
use crate::proto::{self, error_response, ErrorCode, Request};
use crate::service::Service;

/// A shared line-oriented response sink.
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Writes one response line, flushing so clients see it immediately.
fn write_line(writer: &SharedWriter, response: &Json) {
    let mut w = writer.lock().expect("writer mutex poisoned");
    // A broken pipe means the client went away; nothing useful to do.
    let _ = writeln!(w, "{response}");
    let _ = w.flush();
}

/// A request that never even parsed still leaves a wide event behind —
/// a client speaking garbage is exactly the kind of thing a post-mortem
/// wants to see.
fn record_parse_error() {
    let recorder = ntr_obs::Journal::global();
    let event = ntr_obs::journal::WideEvent {
        outcome: "parse_error",
        algorithm: "",
        fidelity_requested: "",
        fidelity_served: "",
        ..ntr_obs::journal::WideEvent::default()
    };
    let seq = recorder.record_request(event.clone());
    let mut event = event;
    event.seq = seq;
    recorder.offer_exemplar(event, Vec::new());
}

/// The body answering a `faults` op: the installed plan (or `null`) and
/// the monotone injected-fault total.
fn faults_response(service: &Service) -> Json {
    let plan = service
        .fault_plan()
        .map_or(Json::Null, |p| Json::str(p.source()));
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("faults")),
        ("plan", plan),
        ("injected", Json::Num(service.faults_injected() as f64)),
    ])
}

/// Handles one request line. Returns `true` when the line asked for
/// shutdown.
fn handle_line(service: &Arc<Service>, writer: &SharedWriter, line: &str) -> bool {
    let line = line.trim();
    if line.is_empty() {
        return false;
    }
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            record_parse_error();
            write_line(
                writer,
                &error_response(None, ErrorCode::Parse, &e.to_string()),
            );
            return false;
        }
    };
    match proto::parse_request(&doc) {
        Err(reason) => {
            record_parse_error();
            write_line(
                writer,
                &error_response(doc.get("id"), ErrorCode::Parse, &reason),
            );
            false
        }
        Ok(Request::Stats) => {
            write_line(writer, &service.stats_json());
            false
        }
        Ok(Request::Metrics) => {
            write_line(
                writer,
                &Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("op", Json::str("metrics")),
                    ("content_type", Json::str(crate::http::METRICS_CONTENT_TYPE)),
                    ("body", Json::str(service.metrics_text())),
                ]),
            );
            false
        }
        Ok(Request::Profile {
            top,
            enable,
            source,
        }) => {
            let profile = match source {
                proto::ProfileSource::Spans => {
                    if let Some(on) = enable {
                        ntr_obs::span::set_enabled(on);
                    }
                    let spans = ntr_obs::span::take_spans();
                    ntr_obs::profile::build_profile(&spans)
                }
                proto::ProfileSource::Sampler => ntr_obs::sampler::profile(),
            };
            let entries = ntr_obs::profile::top_self(&profile, top)
                .into_iter()
                .map(|e| {
                    Json::obj(vec![
                        ("name", Json::str(e.name)),
                        ("self_ns", Json::Num(e.self_ns as f64)),
                        ("count", Json::Num(e.count as f64)),
                    ])
                })
                .collect();
            let source_name = match source {
                proto::ProfileSource::Spans => "spans",
                proto::ProfileSource::Sampler => "sampler",
            };
            write_line(
                writer,
                &Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("op", Json::str("profile")),
                    ("source", Json::str(source_name)),
                    ("tracing", Json::Bool(ntr_obs::span::enabled())),
                    ("sampling", Json::Bool(ntr_obs::sampler::is_running())),
                    ("spans", Json::Num(profile.spans as f64)),
                    ("total_ns", Json::Num(profile.total_ns() as f64)),
                    (
                        "dropped_total",
                        Json::Num(ntr_obs::span::dropped_spans() as f64),
                    ),
                    ("top", Json::Arr(entries)),
                ]),
            );
            false
        }
        Ok(Request::Query { metric, res_secs }) => {
            write_line(writer, &service.query_json(metric.as_deref(), res_secs));
            false
        }
        Ok(Request::Alerts) => {
            write_line(writer, &service.alerts_json());
            false
        }
        Ok(Request::Faults { plan }) => {
            let response = match plan {
                // No "plan" field: query the installed plan.
                None => faults_response(service),
                Some(text) if text.is_empty() => {
                    service.set_fault_plan(None);
                    faults_response(service)
                }
                Some(text) => match ntr_core::FaultPlan::parse(&text) {
                    Ok(plan) => {
                        service.set_fault_plan(Some(Arc::new(plan)));
                        faults_response(service)
                    }
                    Err(reason) => error_response(doc.get("id"), ErrorCode::Parse, &reason),
                },
            };
            write_line(writer, &response);
            false
        }
        Ok(Request::Journal) => {
            let mut body = ntr_obs::Journal::global().snapshot().to_json();
            body.set("ok", Json::Bool(true));
            body.set("op", Json::str("journal"));
            write_line(writer, &body);
            false
        }
        Ok(Request::Shutdown) => {
            write_line(
                writer,
                &Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("op", Json::str("shutdown")),
                ]),
            );
            true
        }
        Ok(Request::Route(request)) => {
            let writer = Arc::clone(writer);
            service.submit(
                request,
                Box::new(move |response| write_line(&writer, &response)),
            );
            false
        }
        Ok(Request::Session(request)) => {
            let writer = Arc::clone(writer);
            service.submit_session(
                request,
                Box::new(move |response| write_line(&writer, &response)),
            );
            false
        }
    }
}

/// Serves requests from `stdin`, one JSON object per line, answering on
/// `stdout`. Returns after EOF or a `shutdown` request, once all
/// accepted work has been answered.
pub fn serve_stdio(service: Arc<Service>) {
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::stdout())));
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if handle_line(&service, &writer, &line) {
            break;
        }
    }
    service.shutdown();
}

/// Serves the same protocol over TCP, one connection per client, a
/// thread per connection. A `shutdown` request from any client stops
/// the whole server (drain semantics identical to stdio).
///
/// # Errors
///
/// Returns the bind error when the address is unavailable.
pub fn serve_tcp(addr: impl ToSocketAddrs, service: Arc<Service>) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut connections = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((socket, _peer)) => {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                connections.push(std::thread::spawn(move || {
                    let Ok(write_half) = socket.try_clone() else {
                        return;
                    };
                    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
                    let reader = BufReader::new(socket);
                    for line in reader.lines() {
                        let Ok(line) = line else { break };
                        if handle_line(&service, &writer, &line) {
                            stop.store(true, Ordering::Release);
                            break;
                        }
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => break,
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
    service.shutdown();
    Ok(())
}
