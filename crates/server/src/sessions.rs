//! The bounded session table: live [`RoutingSession`]s addressed by
//! server-assigned handles.
//!
//! Sessions are server state a client can leak, so the table is bounded
//! two ways: a hard capacity (creates past it answer the structured
//! `session` error) and a last-use TTL enforced by the service's
//! observability ticker — an evicted session's cancel token trips, so
//! any in-flight reroute for it stops at its next cancellation check.
//!
//! Session responses bypass the content-addressed result cache in both
//! directions (a session's net mutates under it; only quiescent
//! full-net `route` requests are cacheable), so nothing here touches
//! the LRU.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ntr_core::{CancelToken, RoutingSession};

/// One live session plus its serving-side envelope.
pub struct SessionEntry {
    /// Server-assigned handle.
    pub id: u64,
    /// The session itself; ops on one session serialize on this lock.
    pub session: Mutex<RoutingSession>,
    /// Session-wide cancel token: tripped on close and eviction.
    pub cancel: CancelToken,
    last_used: Mutex<Instant>,
}

impl SessionEntry {
    /// Marks the session as just used (resets its TTL clock).
    pub fn touch(&self) {
        *self.last_used.lock().expect("last_used mutex poisoned") = Instant::now();
    }

    fn idle_since(&self) -> Instant {
        *self.last_used.lock().expect("last_used mutex poisoned")
    }
}

/// Why a session could not be inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull {
    /// The configured capacity that was hit.
    pub capacity: usize,
}

/// The bounded, TTL-evicting session table.
pub struct SessionTable {
    inner: Mutex<HashMap<u64, std::sync::Arc<SessionEntry>>>,
    next_id: AtomicU64,
    capacity: usize,
    ttl: Duration,
}

impl SessionTable {
    /// A table admitting at most `capacity` sessions, evicting any idle
    /// longer than `ttl`.
    #[must_use]
    pub fn new(capacity: usize, ttl: Duration) -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            capacity: capacity.max(1),
            ttl,
        }
    }

    /// Live sessions right now (the `ntr_sessions_active` gauge).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("session table poisoned").len()
    }

    /// Whether the table holds no sessions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits a session, assigning its handle. Expired entries are
    /// evicted first, so a full table of dead sessions never blocks a
    /// live client.
    ///
    /// # Errors
    ///
    /// [`TableFull`] when the capacity is reached by live sessions.
    pub fn insert(
        &self,
        session: RoutingSession,
        cancel: CancelToken,
    ) -> Result<std::sync::Arc<SessionEntry>, TableFull> {
        self.evict_expired();
        let mut inner = self.inner.lock().expect("session table poisoned");
        if inner.len() >= self.capacity {
            return Err(TableFull {
                capacity: self.capacity,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = std::sync::Arc::new(SessionEntry {
            id,
            session: Mutex::new(session),
            cancel,
            last_used: Mutex::new(Instant::now()),
        });
        inner.insert(id, std::sync::Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks a session up and resets its TTL clock.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<std::sync::Arc<SessionEntry>> {
        let entry = self
            .inner
            .lock()
            .expect("session table poisoned")
            .get(&id)
            .cloned()?;
        entry.touch();
        Some(entry)
    }

    /// Removes a session (the `session.close` path). The caller owns
    /// tripping the cancel token and reading final stats.
    #[must_use]
    pub fn remove(&self, id: u64) -> Option<std::sync::Arc<SessionEntry>> {
        self.inner
            .lock()
            .expect("session table poisoned")
            .remove(&id)
    }

    /// Evicts every session idle past the TTL, tripping each one's
    /// cancel token. Returns how many were evicted. Called by the
    /// service's observability ticker once per tick.
    pub fn evict_expired(&self) -> u64 {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("session table poisoned");
        let dead: Vec<u64> = inner
            .iter()
            .filter(|(_, e)| now.duration_since(e.idle_since()) > self.ttl)
            .map(|(&id, _)| id)
            .collect();
        for id in &dead {
            if let Some(entry) = inner.remove(id) {
                entry.cancel.cancel();
            }
        }
        dead.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_circuit::Technology;
    use ntr_core::{Algorithm, Budget};
    use ntr_geom::{Layout, NetGenerator};

    fn session() -> RoutingSession {
        let net = NetGenerator::new(Layout::date94(), 7)
            .random_net(5)
            .unwrap();
        RoutingSession::create(&net, Algorithm::Mst, Budget::new(Technology::date94()))
            .unwrap()
            .0
    }

    #[test]
    fn handles_are_distinct_and_lookups_touch() {
        let table = SessionTable::new(4, Duration::from_secs(60));
        let a = table.insert(session(), CancelToken::new()).unwrap();
        let b = table.insert(session(), CancelToken::new()).unwrap();
        assert_ne!(a.id, b.id);
        assert_eq!(table.len(), 2);
        assert!(table.get(a.id).is_some());
        assert!(table.get(999).is_none());
        assert!(table.remove(b.id).is_some());
        assert!(table.get(b.id).is_none());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn capacity_is_enforced_after_evicting_the_dead() {
        let table = SessionTable::new(2, Duration::from_secs(60));
        let _a = table.insert(session(), CancelToken::new()).unwrap();
        let _b = table.insert(session(), CancelToken::new()).unwrap();
        match table.insert(session(), CancelToken::new()) {
            Err(full) => assert_eq!(full, TableFull { capacity: 2 }),
            Ok(_) => panic!("a full table must reject the insert"),
        }
    }

    #[test]
    fn ttl_eviction_trips_the_cancel_token() {
        let table = SessionTable::new(4, Duration::ZERO);
        let cancel = CancelToken::new();
        let entry = table.insert(session(), cancel.clone()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(table.evict_expired(), 1);
        assert!(table.is_empty());
        assert!(cancel.is_cancelled());
        assert!(entry.cancel.is_cancelled());
        // A full-capacity table of expired sessions admits a new one.
        let table = SessionTable::new(1, Duration::ZERO);
        let _old = table.insert(session(), CancelToken::new()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert!(table.insert(session(), CancelToken::new()).is_ok());
    }
}
