//! The bounded work queue feeding the worker pool.
//!
//! Backpressure by construction: [`BoundedQueue::try_push`] never
//! blocks — when the queue is at capacity the job is handed straight
//! back so the caller can answer `overloaded` instead of letting
//! latency grow without bound. Workers block on [`BoundedQueue::pop`].
//! Closing the queue wakes every worker; they drain what remains and
//! exit, which is exactly the graceful-shutdown sequence.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] returned the job.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Queue at capacity — backpressure; retry later.
    Full(T),
    /// Queue closed — the service is shutting down.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A multi-producer multi-consumer FIFO with a hard capacity.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` (≥1) pending items.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item back as [`PushError::Full`] at capacity or
    /// [`PushError::Closed`] after [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed **and drained** (returning `None`). Closing does not drop
    /// pending work: every item pushed before `close` is still popped.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue mutex poisoned");
        }
    }

    /// Closes the queue: future pushes fail, workers drain and exit.
    pub fn close(&self) {
        self.inner.lock().expect("queue mutex poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Current number of pending items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1), "pending work survives close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(7).unwrap();
        q.close();
        let mut got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }
}
