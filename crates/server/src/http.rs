//! A minimal HTTP responder for the observability surface.
//!
//! Prometheus scrapes over HTTP, and the JSON-lines protocol is not
//! that; this module serves exactly the read-only observability
//! surface — `GET /metrics` (Prometheus text exposition), `GET
//! /statusz` (the live HTML dashboard), `GET /journal` (the flight
//! recorder as JSON-lines), `GET /tsdb?metric=NAME&res=SECS` (the
//! embedded time-series store), `GET /alertz` (burn-rate SLO alert
//! state) and `GET /profilez` (the sampling profiler as folded
//! stacks), everything else 404 — with
//! connection-per-request simplicity (`Connection: close`, no
//! keep-alive, no chunking). It is deliberately not a web framework:
//! one request line is read, headers are skipped, one response is
//! written.
//!
//! Started via `ntr-serve --metrics-addr HOST:PORT` or
//! [`spawn_metrics_server`] (which binds first and returns the actual
//! address, so tests can bind port 0).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;

use ntr_obs::log_debug;

use crate::service::Service;

/// The content type of Prometheus text exposition format 0.0.4.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// The content type of the `GET /journal` JSON-lines dump.
pub const JOURNAL_CONTENT_TYPE: &str = "application/x-ndjson; charset=utf-8";

/// The content type of `GET /tsdb` and `GET /alertz` JSON bodies.
pub const JSON_CONTENT_TYPE: &str = "application/json; charset=utf-8";

/// The content type of the `GET /profilez` folded-stack dump.
pub const FOLDED_CONTENT_TYPE: &str = "text/plain; charset=utf-8";

/// Pulls one `key=value` pair out of a raw query string. Values are
/// taken verbatim — the observability surface never needs
/// percent-decoding (metric names are `[a-z_]`).
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    // A failed write means the scraper went away; nothing useful to do.
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Handles one connection: one request, one response, close.
fn handle_connection(mut stream: TcpStream, service: &Service) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // "GET /metrics HTTP/1.1" — method and path are all we route on;
    // remaining headers are irrelevant for a scrape and left unread.
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let query = path.split_once('?').map_or("", |(_, q)| q);
    match (method, path.split('?').next().unwrap_or("")) {
        ("GET", "/metrics") => {
            log_debug!("serving /metrics scrape");
            respond(
                &mut stream,
                "200 OK",
                METRICS_CONTENT_TYPE,
                &service.metrics_text(),
            );
        }
        ("GET", "/statusz") => {
            log_debug!("serving /statusz dashboard");
            respond(
                &mut stream,
                "200 OK",
                crate::statusz::STATUSZ_CONTENT_TYPE,
                &crate::statusz::render(service),
            );
        }
        ("GET", "/journal") => {
            log_debug!("serving /journal dump");
            respond(
                &mut stream,
                "200 OK",
                JOURNAL_CONTENT_TYPE,
                &ntr_obs::Journal::global().snapshot().to_json_lines(),
            );
        }
        ("GET", "/tsdb") => {
            log_debug!("serving /tsdb query");
            let metric = query_param(query, "metric").filter(|m| !m.is_empty());
            let res_secs = query_param(query, "res")
                .and_then(|r| r.parse::<u64>().ok())
                .unwrap_or(1);
            respond(
                &mut stream,
                "200 OK",
                JSON_CONTENT_TYPE,
                &format!("{}\n", service.query_json(metric, res_secs)),
            );
        }
        ("GET", "/alertz") => {
            log_debug!("serving /alertz snapshot");
            respond(
                &mut stream,
                "200 OK",
                JSON_CONTENT_TYPE,
                &format!("{}\n", service.alerts_json()),
            );
        }
        ("GET", "/profilez") => {
            log_debug!("serving /profilez folded stacks");
            respond(
                &mut stream,
                "200 OK",
                FOLDED_CONTENT_TYPE,
                &ntr_obs::sampler::folded(),
            );
        }
        ("GET", _) => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "only /metrics, /statusz, /journal, /tsdb, /alertz and /profilez are served here\n",
        ),
        _ => respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        ),
    }
}

/// Binds `addr` and serves the read-only observability surface
/// (`/metrics`, `/statusz`, `/journal`, `/tsdb`, `/alertz`,
/// `/profilez`) on a background thread for the life of the process.
/// Returns the actually-bound address (bind to port 0 to let the OS
/// pick) and the acceptor's join handle.
///
/// # Errors
///
/// Returns the bind error when the address is unavailable.
pub fn spawn_metrics_server(
    addr: impl ToSocketAddrs,
    service: Arc<Service>,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("ntr-metrics-http".to_owned())
        .spawn(move || {
            for stream in listener.incoming() {
                match stream {
                    Ok(stream) => handle_connection(stream, &service),
                    Err(_) => break,
                }
            }
        })
        .expect("spawning the metrics acceptor failed");
    Ok((local, handle))
}
