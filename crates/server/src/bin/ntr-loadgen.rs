//! Workload generator for `ntr-serve`.
//!
//! Spawns the server as a child process speaking the stdio protocol,
//! drives it with randomly generated nets (a configurable fraction are
//! repeats, to exercise the result cache), and reports throughput,
//! client-side latency percentiles, and cache hit rate.
//!
//! ```text
//! ntr-loadgen --stdio --smoke            # CI gate: 50 requests, no errors, valid /metrics
//! ntr-loadgen --stdio --bench            # 1-worker vs 4-worker throughput comparison
//! ntr-loadgen --stdio --bench --baseline FILE   # + per-phase deltas vs a prior artifact
//! ntr-loadgen --stdio --chaos [--smoke]  # fault-injection gate: degrade, never fail
//! ntr-loadgen --stdio --sessions [--smoke]  # incremental-rerouting session gate
//! ntr-loadgen --stdio [--nets N] [--size K] [--repeat F] [--workers N]
//!             [--rate R] [--seed S] [--out FILE] [--serve-bin PATH]
//! ```
//!
//! `--chaos` spawns the server under an `NTR_FAULTS` plan that fails
//! **every** transient-fidelity oracle call and randomly stalls workers,
//! then sends v2 requests asking for the `transient-fast` oracle under a
//! tight deadline. The gate asserts the resilience contract: zero hard
//! failures (every request answers `ok`), every response degraded below
//! transient fidelity, and the degradation/retry counters present in the
//! Prometheus exposition. `--chaos --smoke` is the small-N CI variant.
//! A second act drives a deterministic SLO alert cycle against a fresh
//! server: hard failures under the fault plan must make the
//! availability burn-rate alert fire exactly once, and retiring the
//! plan must clear it exactly once.
//!
//! `--sessions` drives the incremental-rerouting protocol: session
//! create → mutate → reroute → close cycles where every delta reroute
//! must answer `ok` via the refactor rung of the decision ladder, the
//! session counters must balance at the end (created == closed, zero
//! active), every session op must land in the flight recorder, and an
//! unknown-handle probe must answer the structured `session` error and
//! be retained as a flagged journal exemplar. `--sessions --smoke` is
//! the small-N CI variant.
//!
//! `--baseline FILE` points at a previously written
//! `results/serve_throughput.json`; each phase's latency percentiles are
//! judged with the same threshold rule as the `ntr-bench` regression
//! gate ([`ntr_obs::compare`]) and printed as a delta table. Raw
//! percentiles carry no confidence interval, so the comparison is
//! threshold-only and informational — it never fails the run.
//!
//! The generator enforces a client-side in-flight window smaller than
//! the server's queue, so a healthy run never trips backpressure; an
//! `overloaded` response therefore counts as an error here.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ntr_geom::Layout;
use ntr_obs::prometheus::check_exposition;
use ntr_server::json::Json;

fn usage() -> ! {
    eprintln!(
        "usage: ntr-loadgen --stdio [--smoke | --bench | --chaos [--smoke] | --sessions [--smoke]]\n\
         \x20                [--nets N]      requests to send (default 150)\n\
         \x20                [--size K]      pins per net (default 20)\n\
         \x20                [--repeat F]    fraction of repeated nets 0..1 (default 0.2)\n\
         \x20                [--workers N]   server workers for a plain run (default 4)\n\
         \x20                [--rate R]      target requests/sec (default: unpaced)\n\
         \x20                [--seed S]      workload seed (default 1994)\n\
         \x20                [--out FILE]    write the bench JSON artifact here\n\
         \x20                [--baseline F]  prior bench artifact to print deltas against\n\
         \x20                [--serve-bin P] path to ntr-serve (default: sibling binary)\n\
         \n\
         --chaos runs the fault-injection gate (with --smoke: the small CI variant):\n\
         the server is spawned under a 100%-transient-fault NTR_FAULTS plan and every\n\
         request must still answer ok at a degraded fidelity.\n\
         \n\
         --sessions runs the incremental-rerouting gate (with --smoke: the small CI\n\
         variant): create -> mutate -> reroute -> close cycles must all answer ok,\n\
         delta reroutes must reuse the cached factorization, the session counters\n\
         must balance in /metrics, and every op must be journaled."
    );
    std::process::exit(2);
}

/// SplitMix64: deterministic repeat/pick decisions without a rand dep.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[derive(Clone, Copy)]
struct Workload {
    nets: usize,
    size: usize,
    repeat: f64,
    seed: u64,
}

/// Pre-renders the request lines: a mixed LDRG/H1 stream where a
/// `repeat` fraction re-sends an earlier net (same pins, same options →
/// same cache key).
fn generate_requests(w: Workload) -> Vec<String> {
    let layout = Layout::date94();
    let mut rng = SplitMix64(w.seed ^ 0x6e74_722d_6c67); // "ntr-lg"
    let mut gen = ntr_geom::NetGenerator::new(layout, w.seed);
    let mut nets: Vec<(String, &'static str)> = Vec::with_capacity(w.nets);
    let mut lines = Vec::with_capacity(w.nets);
    for i in 0..w.nets {
        let (pins_json, algorithm) = if !nets.is_empty() && rng.unit() < w.repeat {
            nets[(rng.next() as usize) % nets.len()].clone()
        } else {
            let net = gen
                .random_net(w.size)
                .expect("layout admits nets of this size");
            let pins = Json::Arr(
                net.pins()
                    .iter()
                    .map(|p| Json::Arr(vec![Json::Num(p.x), Json::Num(p.y)]))
                    .collect(),
            );
            let algorithm = if nets.len().is_multiple_of(2) {
                "ldrg"
            } else {
                "h1"
            };
            let fresh = (pins.to_line(), algorithm);
            nets.push(fresh.clone());
            fresh
        };
        lines.push(format!(
            r#"{{"op":"route","id":{i},"algorithm":"{algorithm}","oracle":"moment","pins":{pins_json}}}"#
        ));
    }
    lines
}

#[derive(Default)]
struct Progress {
    pending: HashMap<u64, Instant>,
    latencies_us: Vec<u64>,
    ok: usize,
    errors: usize,
    cached: usize,
    /// ok responses by their `fidelity` field (absent → "unknown").
    fidelities: HashMap<String, usize>,
    /// Trace ids of ok responses that reported `degraded: true` — the
    /// chaos gate checks each one against the journal's exemplars.
    degraded_traces: Vec<u64>,
    stats: Option<Json>,
    metrics: Option<Json>,
    journal: Option<Json>,
    reader_done: bool,
}

struct RunResult {
    ok: usize,
    errors: usize,
    cached: usize,
    fidelities: HashMap<String, usize>,
    wall: Duration,
    latencies_us: Vec<u64>,
    degraded_traces: Vec<u64>,
    server_stats: Option<Json>,
    metrics_body: Option<String>,
    journal: Option<Json>,
}

impl RunResult {
    fn nets_per_sec(&self) -> f64 {
        self.ok as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    fn cache_hit_rate(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.cached as f64 / self.ok as f64
        }
    }
}

fn locate_serve_bin(explicit: Option<&str>) -> PathBuf {
    if let Some(path) = explicit {
        return PathBuf::from(path);
    }
    let mut path = std::env::current_exe().expect("current_exe is readable");
    path.set_file_name("ntr-serve");
    path
}

fn spawn_server(
    serve_bin: &PathBuf,
    workers: usize,
    queue: usize,
    faults: Option<&str>,
    slos: Option<&str>,
) -> std::io::Result<Child> {
    let mut command = Command::new(serve_bin);
    command
        .args([
            "--stdio",
            "--workers",
            &workers.to_string(),
            "--queue",
            &queue.to_string(),
        ])
        // Never inherit a fault plan or SLO list from the invoking shell.
        .env_remove("NTR_FAULTS")
        .env_remove("NTR_SLOS")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if let Some(plan) = faults {
        command.env("NTR_FAULTS", plan);
    }
    if let Some(list) = slos {
        command.env("NTR_SLOS", list);
    }
    command.spawn()
}

const QUEUE_DEPTH: usize = 64;
const WINDOW: usize = 32; // in-flight cap, deliberately below QUEUE_DEPTH
const RUN_TIMEOUT: Duration = Duration::from_secs(600);

fn run_against_server(
    serve_bin: &PathBuf,
    workers: usize,
    requests: &[String],
    rate: Option<f64>,
    faults: Option<&str>,
) -> Result<RunResult, String> {
    let mut child = spawn_server(serve_bin, workers, QUEUE_DEPTH, faults, None)
        .map_err(|e| format!("spawn: {e}"))?;
    let mut stdin = child.stdin.take().expect("stdin piped");
    let stdout = child.stdout.take().expect("stdout piped");

    let shared = Arc::new((Mutex::new(Progress::default()), Condvar::new()));
    let reader = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                let Ok(doc) = Json::parse(&line) else {
                    continue;
                };
                let (state, changed) = &*shared;
                let mut s = state.lock().expect("progress mutex poisoned");
                if doc.get("op").and_then(Json::as_str) == Some("stats") {
                    s.stats = Some(doc);
                } else if doc.get("op").and_then(Json::as_str) == Some("metrics") {
                    s.metrics = Some(doc);
                } else if doc.get("op").and_then(Json::as_str) == Some("journal") {
                    s.journal = Some(doc);
                } else if doc.get("op").and_then(Json::as_str) == Some("shutdown") {
                    // ack only
                } else {
                    let id = doc.get("id").and_then(Json::as_f64).map(|v| v as u64);
                    let sent = id.and_then(|id| s.pending.remove(&id));
                    if doc.get("ok").and_then(Json::as_bool) == Some(true) {
                        s.ok += 1;
                        let fidelity = doc
                            .get("fidelity")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_owned();
                        *s.fidelities.entry(fidelity).or_insert(0) += 1;
                        if doc.get("degraded").and_then(Json::as_bool) == Some(true) {
                            if let Some(t) = doc.get("trace").and_then(Json::as_f64) {
                                s.degraded_traces.push(t as u64);
                            }
                        }
                        if doc.get("cached").and_then(Json::as_bool) == Some(true) {
                            s.cached += 1;
                        } else if let Some(sent) = sent {
                            s.latencies_us.push(sent.elapsed().as_micros() as u64);
                        }
                    } else {
                        s.errors += 1;
                        let code = doc.get("error").and_then(Json::as_str).unwrap_or("?");
                        let detail = doc.get("detail").and_then(Json::as_str).unwrap_or("");
                        eprintln!("ntr-loadgen: error response {code}: {detail}");
                    }
                }
                changed.notify_all();
            }
            let (state, changed) = &*shared;
            state.lock().expect("progress mutex poisoned").reader_done = true;
            changed.notify_all();
        })
    };

    let start = Instant::now();
    let (state, changed) = &*shared;
    for (i, line) in requests.iter().enumerate() {
        if let Some(rate) = rate {
            let due = start + Duration::from_secs_f64(i as f64 / rate);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        {
            let mut s = state.lock().expect("progress mutex poisoned");
            while s.pending.len() >= WINDOW && !s.reader_done {
                let (next, timeout) = changed
                    .wait_timeout(s, Duration::from_secs(5))
                    .expect("progress mutex poisoned");
                s = next;
                if timeout.timed_out() && start.elapsed() > RUN_TIMEOUT {
                    return Err("timed out waiting for the in-flight window".to_owned());
                }
            }
            if s.reader_done {
                return Err("server exited before the run completed".to_owned());
            }
            s.pending.insert(i as u64, Instant::now());
        }
        writeln!(stdin, "{line}").map_err(|e| format!("write: {e}"))?;
    }
    // Drain all in-flight responses.
    {
        let mut s = state.lock().expect("progress mutex poisoned");
        while !s.pending.is_empty() && !s.reader_done {
            let (next, timeout) = changed
                .wait_timeout(s, Duration::from_secs(5))
                .expect("progress mutex poisoned");
            s = next;
            if timeout.timed_out() && start.elapsed() > RUN_TIMEOUT {
                return Err("timed out draining responses".to_owned());
            }
        }
    }
    let wall = start.elapsed();

    // Collect server-side counters, the Prometheus exposition, and the
    // flight-recorder snapshot, then shut down and reap.
    writeln!(stdin, r#"{{"op":"stats"}}"#).map_err(|e| format!("write: {e}"))?;
    writeln!(stdin, r#"{{"op":"metrics"}}"#).map_err(|e| format!("write: {e}"))?;
    writeln!(stdin, r#"{{"op":"journal"}}"#).map_err(|e| format!("write: {e}"))?;
    {
        let mut s = state.lock().expect("progress mutex poisoned");
        while (s.stats.is_none() || s.metrics.is_none() || s.journal.is_none()) && !s.reader_done {
            let (next, timeout) = changed
                .wait_timeout(s, Duration::from_secs(5))
                .expect("progress mutex poisoned");
            s = next;
            if timeout.timed_out() {
                break;
            }
        }
    }
    let _ = writeln!(stdin, r#"{{"op":"shutdown"}}"#);
    drop(stdin);
    let _ = reader.join();
    let status = child.wait().map_err(|e| format!("wait: {e}"))?;
    if !status.success() {
        return Err(format!("server exited with {status}"));
    }

    let s = state.lock().expect("progress mutex poisoned");
    Ok(RunResult {
        ok: s.ok,
        errors: s.errors,
        cached: s.cached,
        fidelities: s.fidelities.clone(),
        wall,
        latencies_us: s.latencies_us.clone(),
        degraded_traces: s.degraded_traces.clone(),
        server_stats: s.stats.clone(),
        metrics_body: s
            .metrics
            .as_ref()
            .and_then(|m| m.get("body").and_then(Json::as_str))
            .map(str::to_owned),
        journal: s.journal.clone(),
    })
}

fn print_summary(label: &str, r: &RunResult) {
    println!(
        "{label}: {} ok, {} errors, {} cached ({:.0}% hit), {:.1} nets/s, \
         latency p50 {} us / p90 {} us / p99 {} us",
        r.ok,
        r.errors,
        r.cached,
        r.cache_hit_rate() * 100.0,
        r.nets_per_sec(),
        r.percentile_us(50.0),
        r.percentile_us(90.0),
        r.percentile_us(99.0),
    );
    if let Some(stats) = &r.server_stats {
        let field = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        println!(
            "  server: {} completed, {} cache hits / {} misses, {} deadline, {} overloaded",
            field("completed"),
            field("cache_hits"),
            field("cache_misses"),
            field("deadline_expired"),
            field("overloaded"),
        );
    }
    print_journal_report(r);
}

/// Reads a numeric wide-event field, defaulting missing/NaN to 0.
fn event_num(event: &Json, key: &str) -> u64 {
    event.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64
}

/// End-of-run flight-recorder report: counts from the server's
/// `{"op":"journal"}` snapshot, then the top-5 slowest journaled
/// requests with their wide-event fields.
fn print_journal_report(r: &RunResult) {
    let Some(journal) = &r.journal else {
        println!("  journal: no snapshot from the server");
        return;
    };
    println!(
        "  journal: {} requests / {} iterations / {} exemplars retained \
         ({} recorded, {} dropped)",
        event_num(journal, "requests"),
        event_num(journal, "iterations"),
        event_num(journal, "exemplars"),
        event_num(journal, "requests_recorded"),
        event_num(journal, "requests_dropped"),
    );
    let Some(events) = journal.get("request_events").and_then(Json::as_arr) else {
        return;
    };
    let mut slowest: Vec<&Json> = events.iter().collect();
    slowest.sort_by_key(|e| std::cmp::Reverse(event_num(e, "total_us")));
    for event in slowest.iter().take(5) {
        let text = |k: &str| event.get(k).and_then(Json::as_str).unwrap_or("?");
        println!(
            "    trace {} {} {} {}->{} total {} us (queue {} / route {}) \
             degraded {} retries {} faults {}{}",
            event_num(event, "trace"),
            text("algorithm"),
            text("outcome"),
            text("fidelity_requested"),
            text("fidelity_served"),
            event_num(event, "total_us"),
            event_num(event, "queue_us"),
            event_num(event, "route_us"),
            event_num(event, "degradation_steps"),
            event_num(event, "retries"),
            event_num(event, "injected_faults"),
            if event.get("cache_hit").and_then(Json::as_bool) == Some(true) {
                " (cache hit)"
            } else {
                ""
            },
        );
    }
}

fn smoke(serve_bin: &PathBuf, seed: u64) -> i32 {
    let requests = generate_requests(Workload {
        nets: 50,
        size: 6,
        repeat: 0.3,
        seed,
    });
    match run_against_server(serve_bin, 2, &requests, None, None) {
        Ok(r) => {
            print_summary("smoke", &r);
            if r.errors > 0 {
                eprintln!("smoke FAILED: {} error responses", r.errors);
                return 1;
            }
            if r.ok != requests.len() {
                eprintln!("smoke FAILED: {}/{} answered", r.ok, requests.len());
                return 1;
            }
            if r.cached == 0 {
                eprintln!("smoke FAILED: no cache hits on a 30%-repeat workload");
                return 1;
            }
            // The scrape surface is part of the gate: the exposition must
            // pass the in-repo checker and carry the request counters.
            let Some(body) = &r.metrics_body else {
                eprintln!("smoke FAILED: no metrics exposition from the server");
                return 1;
            };
            if let Err(e) = check_exposition(body) {
                eprintln!("smoke FAILED: invalid Prometheus exposition: {e}");
                return 1;
            }
            let expected = format!("ntr_requests_received_total {}", requests.len());
            if !body.contains(&expected) {
                eprintln!("smoke FAILED: exposition missing {expected:?}");
                return 1;
            }
            println!("smoke OK ({} metrics bytes validated)", body.len());
            0
        }
        Err(e) => {
            eprintln!("smoke FAILED: {e}");
            1
        }
    }
}

/// The chaos plan: every transient-fidelity oracle call fails, workers
/// randomly stall for 2 ms. Deterministic across runs via its seed.
const CHAOS_PLAN: &str = "seed=1994;fail=transient:1.0;stall=0.05:2";

/// Chaos requests use the v2 grouped layout: `transient-fast` oracle,
/// caching off so every request exercises the degradation path itself.
/// The stream alternates the two pressure modes: even ids carry a 50 ms
/// deadline the cost model preempts (descend before the oracle runs),
/// odd ids carry no deadline so the injected faults actually fire and
/// the retry budget is spent before the ladder descends.
fn generate_chaos_requests(w: Workload) -> Vec<String> {
    let mut gen = ntr_geom::NetGenerator::new(Layout::date94(), w.seed);
    (0..w.nets)
        .map(|i| {
            let net = gen
                .random_net(w.size)
                .expect("layout admits nets of this size");
            let pins = Json::Arr(
                net.pins()
                    .iter()
                    .map(|p| Json::Arr(vec![Json::Num(p.x), Json::Num(p.y)]))
                    .collect(),
            )
            .to_line();
            let budget = if i.is_multiple_of(2) {
                r#"{"deadline_ms":50,"retries":2,"degrade":true}"#
            } else {
                r#"{"retries":2,"degrade":true}"#
            };
            format!(
                r#"{{"op":"route","id":{i},"algorithm":"ldrg","params":{{"oracle":"transient-fast","cache":false}},"budget":{budget},"pins":{pins}}}"#
            )
        })
        .collect()
}

/// The resilience gate: under 100% transient-fault injection and worker
/// stalls, every request must still answer `ok` at a degraded fidelity,
/// with bounded tail latency and the new counters visible in `/metrics`.
fn chaos(serve_bin: &PathBuf, seed: u64, smoke_variant: bool) -> i32 {
    let requests = generate_chaos_requests(Workload {
        nets: if smoke_variant { 40 } else { 150 },
        size: if smoke_variant { 6 } else { 12 },
        repeat: 0.0,
        seed,
    });
    let label = if smoke_variant {
        "chaos-smoke"
    } else {
        "chaos"
    };
    let r = match run_against_server(serve_bin, 2, &requests, None, Some(CHAOS_PLAN)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{label} FAILED: {e}");
            return 1;
        }
    };
    print_summary(label, &r);
    let mut fidelities: Vec<_> = r.fidelities.iter().collect();
    fidelities.sort();
    for (fidelity, count) in fidelities {
        println!("  fidelity {fidelity}: {count}");
    }
    let mut failures = Vec::new();
    if r.errors > 0 {
        failures.push(format!("{} hard failures (want 0)", r.errors));
    }
    if r.ok != requests.len() {
        failures.push(format!("{}/{} answered ok", r.ok, requests.len()));
    }
    let at = |f: &str| r.fidelities.get(f).copied().unwrap_or(0);
    // The plan fails every transient-rung call, so nothing may be
    // served at transient fidelity — and with retries exhausted, every
    // request must land on the moment rung (or the tree floor if the
    // deadline also collapsed).
    if at("transient") + at("transient-fast") > 0 {
        failures.push(format!(
            "{} responses served at transient fidelity under a 100% fault plan",
            at("transient") + at("transient-fast")
        ));
    }
    if at("moment") == 0 {
        failures.push("no responses degraded to the moment rung".to_owned());
    }
    if at("unknown") > 0 {
        failures.push(format!(
            "{} responses missing a fidelity field",
            at("unknown")
        ));
    }
    let p99 = r.percentile_us(99.0);
    if p99 > 500_000 {
        failures.push(format!("p99 {p99} us exceeds the 500 ms bound"));
    }
    match &r.metrics_body {
        None => failures.push("no metrics exposition from the server".to_owned()),
        Some(body) => {
            if let Err(e) = check_exposition(body) {
                failures.push(format!("invalid Prometheus exposition: {e}"));
            }
            for metric in [
                "ntr_requests_degraded_total",
                "ntr_retries_total",
                "ntr_faults_injected_total",
            ] {
                // Present with a nonzero value: the fault plan fired and
                // the resilience layer absorbed it.
                if !body.lines().any(|l| {
                    l.starts_with(metric) && l.split_whitespace().nth(1).is_some_and(|v| v != "0")
                }) {
                    failures.push(format!("exposition missing a nonzero {metric}"));
                }
            }
        }
    }
    // Flight-recorder gate: every degraded response must be retained as
    // a full exemplar in the journal. The flagged-exemplar store (256)
    // is larger than the chaos workload, so nothing may be evicted.
    match &r.journal {
        None => failures.push("no flight-recorder snapshot from the server".to_owned()),
        Some(journal) => {
            let exemplar_traces: HashSet<u64> = journal
                .get("exemplar_events")
                .and_then(Json::as_arr)
                .map(|events| events.iter().map(|e| event_num(e, "trace")).collect())
                .unwrap_or_default();
            if r.degraded_traces.is_empty() {
                failures.push("no degraded responses to check against the journal".to_owned());
            }
            let missing = r
                .degraded_traces
                .iter()
                .filter(|t| !exemplar_traces.contains(t))
                .count();
            if missing > 0 {
                failures.push(format!(
                    "{missing}/{} degraded responses have no journal exemplar",
                    r.degraded_traces.len()
                ));
            }
        }
    }
    // Second act: the burn-rate alert cycle — the availability SLO must
    // fire under the fault plan and clear after it is retired, each
    // exactly once.
    if chaos_alert_cycle(serve_bin, seed) != 0 {
        failures.push("the SLO alert-cycle gate failed".to_owned());
    }
    if failures.is_empty() {
        println!("{label} OK: all {} requests degraded gracefully", r.ok);
        0
    } else {
        for f in &failures {
            eprintln!("{label} FAILED: {f}");
        }
        1
    }
}

/// The SLO driven by the alert-cycle gate: a 99% availability objective
/// over a 60 s window with 2 s fast / 8 s slow burn windows, so the
/// whole fire-and-clear cycle completes in seconds rather than hours.
const ALERT_SLO: &str = "chaos-gate=availability:99:60s:2s:8s";
const ALERT_SLO_NAME: &str = "chaos-gate";

/// Pulls the gate's alert out of an `{"op":"alerts"}` response.
fn find_alert<'a>(doc: &'a Json, name: &str) -> Option<&'a Json> {
    doc.get("alerts")?
        .as_arr()?
        .iter()
        .find(|a| a.get("name").and_then(Json::as_str) == Some(name))
}

/// Receives parsed response lines until `pred` accepts one, discarding
/// the rest. `None` on timeout or a closed pipe.
fn await_doc(
    rx: &mpsc::Receiver<Json>,
    mut pred: impl FnMut(&Json) -> bool,
    timeout: Duration,
) -> Option<Json> {
    let deadline = Instant::now() + timeout;
    loop {
        let now = Instant::now();
        if now >= deadline {
            return None;
        }
        match rx.recv_timeout(deadline - now) {
            Ok(doc) if pred(&doc) => return Some(doc),
            Ok(_) => {}
            Err(_) => return None,
        }
    }
}

/// The burn-rate alert-cycle gate: under a 100% transient-fault plan,
/// zero-retry no-degradation requests fail hard and burn the
/// availability error budget, so the SLO's multi-window alert must
/// *fire*; retiring the fault plan and sending healthy traffic must
/// *clear* it. The transition counters are asserted exactly — one fire,
/// one clear — because the error phase is a single contiguous burst.
fn chaos_alert_cycle(serve_bin: &PathBuf, seed: u64) -> i32 {
    let label = "chaos-alerts";
    let fail = |why: &str| {
        eprintln!("{label} FAILED: {why}");
        1
    };
    let mut child = match spawn_server(serve_bin, 2, QUEUE_DEPTH, Some(CHAOS_PLAN), Some(ALERT_SLO))
    {
        Ok(child) => child,
        Err(e) => return fail(&format!("spawn: {e}")),
    };
    let mut stdin = child.stdin.take().expect("stdin piped");
    let stdout = child.stdout.take().expect("stdout piped");
    let (tx, rx) = mpsc::channel::<Json>();
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if let Ok(doc) = Json::parse(&line) {
                if tx.send(doc).is_err() {
                    break;
                }
            }
        }
    });

    let mut gen = ntr_geom::NetGenerator::new(Layout::date94(), seed);
    let mut next_id = 0u64;
    let mut pins_line = move || {
        let net = gen.random_net(6).expect("layout admits nets of this size");
        Json::Arr(
            net.pins()
                .iter()
                .map(|p| Json::Arr(vec![Json::Num(p.x), Json::Num(p.y)]))
                .collect(),
        )
        .to_line()
    };
    let response_timeout = Duration::from_secs(20);

    // Phase 1 — burn the error budget. Every request asks for the
    // transient-fast rung the plan fails 100% of the time, with retries
    // and degradation off, so each one is a hard `route_error`.
    let phase_deadline = Instant::now() + Duration::from_secs(30);
    let mut snapshot: Option<Json> = None;
    while Instant::now() < phase_deadline {
        for _ in 0..4 {
            let id = next_id;
            next_id += 1;
            let pins = pins_line();
            if writeln!(
                stdin,
                r#"{{"op":"route","id":{id},"algorithm":"ldrg","params":{{"oracle":"transient-fast","cache":false}},"budget":{{"retries":0,"degrade":false}},"pins":{pins}}}"#
            )
            .is_err()
            {
                return fail("server stdin closed during the burn phase");
            }
            if await_doc(&rx, |d| d.get("id").is_some(), response_timeout).is_none() {
                return fail("no response to a burn-phase request");
            }
        }
        let _ = writeln!(stdin, r#"{{"op":"alerts"}}"#);
        let Some(doc) = await_doc(
            &rx,
            |d| d.get("op").and_then(Json::as_str) == Some("alerts"),
            response_timeout,
        ) else {
            return fail("no alerts response during the burn phase");
        };
        let firing = find_alert(&doc, ALERT_SLO_NAME)
            .is_some_and(|a| a.get("firing").and_then(Json::as_bool) == Some(true));
        if firing {
            snapshot = Some(doc);
            break;
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    let Some(doc) = snapshot else {
        return fail("the availability alert never fired under a 100% fault plan");
    };
    let counter = |doc: &Json, key: &str| {
        find_alert(doc, ALERT_SLO_NAME)
            .and_then(|a| a.get(key).and_then(Json::as_f64))
            .unwrap_or(-1.0) as i64
    };
    println!(
        "{label}: alert fired (fast {:.1}x) after {} hard failures",
        find_alert(&doc, ALERT_SLO_NAME)
            .and_then(|a| a.get("fast_burn").and_then(Json::as_f64))
            .unwrap_or(0.0),
        next_id
    );

    // Phase 2 — retire the fault plan, then keep healthy traffic
    // flowing until the bad seconds age out of the slow window and the
    // alert clears.
    let _ = writeln!(stdin, r#"{{"op":"faults","plan":""}}"#);
    if await_doc(
        &rx,
        |d| d.get("op").and_then(Json::as_str) == Some("faults"),
        response_timeout,
    )
    .is_none()
    {
        return fail("no response to retiring the fault plan");
    }
    let phase_deadline = Instant::now() + Duration::from_secs(30);
    let mut cleared: Option<Json> = None;
    while Instant::now() < phase_deadline {
        for _ in 0..2 {
            let id = next_id;
            next_id += 1;
            let pins = pins_line();
            if writeln!(
                stdin,
                r#"{{"op":"route","id":{id},"algorithm":"ldrg","params":{{"oracle":"moment","cache":false}},"pins":{pins}}}"#
            )
            .is_err()
            {
                return fail("server stdin closed during the recovery phase");
            }
            if await_doc(&rx, |d| d.get("id").is_some(), response_timeout).is_none() {
                return fail("no response to a recovery-phase request");
            }
        }
        let _ = writeln!(stdin, r#"{{"op":"alerts"}}"#);
        let Some(doc) = await_doc(
            &rx,
            |d| d.get("op").and_then(Json::as_str) == Some("alerts"),
            response_timeout,
        ) else {
            return fail("no alerts response during the recovery phase");
        };
        let done = find_alert(&doc, ALERT_SLO_NAME).is_some_and(|a| {
            a.get("firing").and_then(Json::as_bool) == Some(false)
                && a.get("cleared_total").and_then(Json::as_f64) == Some(1.0)
        });
        if done {
            cleared = Some(doc);
            break;
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    let _ = writeln!(stdin, r#"{{"op":"shutdown"}}"#);
    drop(stdin);
    let _ = reader.join();
    let _ = child.wait();

    let Some(doc) = cleared else {
        return fail("the alert never cleared after the fault plan was retired");
    };
    // Exactly one transition each way: the burst fired it once, the
    // recovery cleared it once, and nothing flapped in between.
    let (fired, cleared) = (counter(&doc, "fired_total"), counter(&doc, "cleared_total"));
    if (fired, cleared) != (1, 1) {
        return fail(&format!(
            "expected exactly one fire and one clear, got fired_total={fired} cleared_total={cleared}"
        ));
    }
    println!("{label} OK: alert fired once and cleared once");
    0
}

/// The incremental-rerouting gate: drives create → mutate → reroute →
/// close session cycles against a live server and asserts the session
/// contract end to end — every op answers `ok`, single move-pin deltas
/// reroute down the refactor rung (same topology, refreshed
/// factorization) rather than from scratch, the session counters
/// balance in the stats and `/metrics` expositions, every session op
/// lands in the flight recorder as a wide event, and an unknown-handle
/// probe answers the structured `session` error *and* is retained as a
/// flagged journal exemplar.
#[allow(clippy::too_many_lines)]
fn sessions_gate(serve_bin: &PathBuf, seed: u64, smoke_variant: bool) -> i32 {
    let label = if smoke_variant {
        "sessions-smoke"
    } else {
        "sessions"
    };
    let fail = |why: &str| {
        eprintln!("{label} FAILED: {why}");
        1
    };
    let (cycles, reroutes_per) = if smoke_variant { (6, 4) } else { (24, 6) };
    let size = 8usize;
    let mut child = match spawn_server(serve_bin, 2, QUEUE_DEPTH, None, None) {
        Ok(child) => child,
        Err(e) => return fail(&format!("spawn: {e}")),
    };
    let mut stdin = child.stdin.take().expect("stdin piped");
    let stdout = child.stdout.take().expect("stdout piped");
    let (tx, rx) = mpsc::channel::<Json>();
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if let Ok(doc) = Json::parse(&line) {
                if tx.send(doc).is_err() {
                    break;
                }
            }
        }
    });
    let response_timeout = Duration::from_secs(20);
    let await_id = |want: u64| {
        await_doc(
            &rx,
            |d| d.get("id").and_then(Json::as_f64) == Some(want as f64),
            response_timeout,
        )
    };

    let mut gen = ntr_geom::NetGenerator::new(Layout::date94(), seed);
    let mut next_id = 0u64;
    let mut path_counts: HashMap<String, usize> = HashMap::new();
    let mut reroute_us: Vec<u64> = Vec::new();
    let mut session_ops = 0usize;
    let started = Instant::now();

    for cycle in 0..cycles {
        let net = gen
            .random_net(size)
            .expect("layout admits nets of this size");
        let mut pins: Vec<(f64, f64)> = net.pins().iter().map(|p| (p.x, p.y)).collect();
        let pins_json = Json::Arr(
            pins.iter()
                .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                .collect(),
        )
        .to_line();

        next_id += 1;
        let id = next_id;
        if writeln!(
            stdin,
            r#"{{"op":"session.create","id":{id},"algorithm":"ldrg","params":{{"oracle":"moment"}},"pins":{pins_json}}}"#
        )
        .is_err()
        {
            return fail("server stdin closed on session.create");
        }
        session_ops += 1;
        let Some(created) = await_id(id) else {
            return fail("no response to session.create");
        };
        if created.get("ok") != Some(&Json::Bool(true)) {
            return fail(&format!("session.create answered {created}"));
        }
        let Some(handle) = created.get("session").and_then(Json::as_f64) else {
            return fail(&format!("session.create response has no handle: {created}"));
        };
        let handle = handle as u64;

        for r in 0..reroutes_per {
            // Bounce a sink back and forth so the pin set never drifts
            // far from the layout the net was generated on; pin 0 (the
            // source) is never moved.
            let pin = 1 + (cycle + r) % (size - 1);
            let dx = if (cycle + r) % 2 == 0 { 35.0 } else { -35.0 };
            let to = (pins[pin].0 + dx, pins[pin].1);
            pins[pin] = to;
            next_id += 1;
            let id = next_id;
            if writeln!(
                stdin,
                r#"{{"op":"session.mutate","id":{id},"session":{handle},"ops":[{{"op":"move_pin","pin":{pin},"to":[{},{}]}}]}}"#,
                to.0, to.1
            )
            .is_err()
            {
                return fail("server stdin closed on session.mutate");
            }
            session_ops += 1;
            let Some(mutated) = await_id(id) else {
                return fail("no response to session.mutate");
            };
            if mutated.get("ok") != Some(&Json::Bool(true))
                || mutated.get("applied").and_then(Json::as_f64) != Some(1.0)
            {
                return fail(&format!("session.mutate answered {mutated}"));
            }

            next_id += 1;
            let id = next_id;
            let sent = Instant::now();
            if writeln!(
                stdin,
                r#"{{"op":"session.reroute","id":{id},"session":{handle}}}"#
            )
            .is_err()
            {
                return fail("server stdin closed on session.reroute");
            }
            session_ops += 1;
            let Some(rerouted) = await_id(id) else {
                return fail("no response to session.reroute");
            };
            reroute_us.push(sent.elapsed().as_micros() as u64);
            if rerouted.get("ok") != Some(&Json::Bool(true)) {
                return fail(&format!("session.reroute answered {rerouted}"));
            }
            let Some(path) = rerouted.get("path").and_then(Json::as_str) else {
                return fail(&format!("session.reroute response has no path: {rerouted}"));
            };
            *path_counts.entry(path.to_owned()).or_insert(0) += 1;
        }

        next_id += 1;
        let id = next_id;
        if writeln!(
            stdin,
            r#"{{"op":"session.close","id":{id},"session":{handle}}}"#
        )
        .is_err()
        {
            return fail("server stdin closed on session.close");
        }
        session_ops += 1;
        let Some(closed) = await_id(id) else {
            return fail("no response to session.close");
        };
        let closed_n = |key: &str| closed.get(key).and_then(Json::as_f64).unwrap_or(-1.0) as i64;
        if closed.get("ok") != Some(&Json::Bool(true))
            || closed_n("mutations") != reroutes_per as i64
            || closed_n("reroutes") != reroutes_per as i64
        {
            return fail(&format!(
                "session.close final stats are off (want {reroutes_per} mutations and reroutes): {closed}"
            ));
        }
    }

    // The structured-error probe: an unknown handle must answer the
    // `session` error code, not a crash or a silent drop.
    next_id += 1;
    let probe_id = next_id;
    if writeln!(
        stdin,
        r#"{{"op":"session.reroute","id":{probe_id},"session":999983}}"#
    )
    .is_err()
    {
        return fail("server stdin closed on the unknown-session probe");
    }
    session_ops += 1;
    let Some(probe) = await_id(probe_id) else {
        return fail("no response to the unknown-session probe");
    };
    if probe.get("error").and_then(Json::as_str) != Some("session") {
        return fail(&format!(
            "unknown-session probe wanted the structured \"session\" error, got {probe}"
        ));
    }

    // End-of-run server-side introspection: stats, metrics, journal.
    let _ = writeln!(stdin, r#"{{"op":"stats"}}"#);
    let stats = await_doc(
        &rx,
        |d| d.get("op").and_then(Json::as_str) == Some("stats"),
        response_timeout,
    );
    let _ = writeln!(stdin, r#"{{"op":"metrics"}}"#);
    let metrics = await_doc(
        &rx,
        |d| d.get("op").and_then(Json::as_str) == Some("metrics"),
        response_timeout,
    );
    let _ = writeln!(stdin, r#"{{"op":"journal"}}"#);
    let journal = await_doc(
        &rx,
        |d| d.get("op").and_then(Json::as_str) == Some("journal"),
        response_timeout,
    );
    let _ = writeln!(stdin, r#"{{"op":"shutdown"}}"#);
    drop(stdin);
    let _ = reader.join();
    let _ = child.wait();

    let elapsed = started.elapsed().as_secs_f64();
    reroute_us.sort_unstable();
    let p50 = reroute_us[reroute_us.len() / 2];
    println!(
        "{label}: {cycles} sessions x {reroutes_per} reroutes in {elapsed:.2}s, reroute p50 {p50} us"
    );
    let mut paths: Vec<_> = path_counts.iter().collect();
    paths.sort();
    for (path, count) in paths {
        println!("  path {path}: {count}");
    }

    let mut failures = Vec::new();
    // Single move-pin deltas keep the topology pattern, so the refactor
    // rung (not scratch) must answer the overwhelming majority.
    let total_reroutes = cycles * reroutes_per;
    let refactors = path_counts.get("refactor").copied().unwrap_or(0);
    if refactors * 2 < total_reroutes {
        failures.push(format!(
            "only {refactors}/{total_reroutes} reroutes took the refactor rung"
        ));
    }
    match &stats {
        None => failures.push("no stats response from the server".to_owned()),
        Some(stats) => {
            let session_stat = |key: &str| {
                stats
                    .get("sessions")
                    .and_then(|s| s.get(key))
                    .and_then(Json::as_f64)
                    .unwrap_or(-1.0) as i64
            };
            for (key, want) in [
                ("active", 0),
                ("created", cycles as i64),
                ("closed", cycles as i64),
                ("errors", 1),
                ("mutations", total_reroutes as i64),
            ] {
                if session_stat(key) != want {
                    failures.push(format!(
                        "stats sessions.{key} = {}, want {want}",
                        session_stat(key)
                    ));
                }
            }
        }
    }
    match &metrics {
        None => failures.push("no metrics exposition from the server".to_owned()),
        Some(doc) => match doc.get("body").and_then(Json::as_str) {
            None => failures.push("metrics response has no body".to_owned()),
            Some(body) => {
                if let Err(e) = check_exposition(body) {
                    failures.push(format!("invalid Prometheus exposition: {e}"));
                }
                let gauge_value = |metric: &str| {
                    body.lines()
                        .find(|l| l.starts_with(metric) && !l.starts_with('#'))
                        .and_then(|l| l.split_whitespace().nth(1))
                        .map(ToOwned::to_owned)
                };
                for (metric, want) in [
                    ("ntr_sessions_active ", "0"),
                    ("ntr_sessions_created_total ", &cycles.to_string()),
                    ("ntr_session_errors_total ", "1"),
                    (
                        "ntr_session_reroutes_refactor_total ",
                        &refactors.to_string(),
                    ),
                ] {
                    match gauge_value(metric) {
                        Some(v) if v == want => {}
                        got => failures.push(format!(
                            "exposition {} = {got:?}, want {want:?}",
                            metric.trim_end()
                        )),
                    }
                }
            }
        },
    }
    match &journal {
        None => failures.push("no flight-recorder snapshot from the server".to_owned()),
        Some(journal) => {
            let session_events =
                journal
                    .get("request_events")
                    .and_then(Json::as_arr)
                    .map_or(0, |events| {
                        events
                            .iter()
                            .filter(|e| {
                                e.get("algorithm")
                                    .and_then(Json::as_str)
                                    .is_some_and(|a| a.starts_with("session."))
                            })
                            .count()
                    });
            if session_events != session_ops {
                failures.push(format!(
                    "journal holds {session_events} session wide events, want {session_ops}"
                ));
            }
            // The probe's error is flagged, so it must be retained as a
            // full exemplar (trace + spans) for post-mortem replay.
            let probe_exemplars = journal
                .get("exemplar_events")
                .and_then(Json::as_arr)
                .map(|exemplars| {
                    exemplars
                        .iter()
                        .filter(|e| {
                            e.get("outcome").and_then(Json::as_str) == Some("session_error")
                        })
                        .count()
                })
                .unwrap_or(0);
            if probe_exemplars == 0 {
                failures
                    .push("the unknown-session error left no flagged journal exemplar".to_owned());
            }
        }
    }
    if failures.is_empty() {
        println!("{label} OK: {session_ops} session ops, counters balanced, all journaled");
        0
    } else {
        for f in &failures {
            eprintln!("{label} FAILED: {f}");
        }
        1
    }
}

/// Client-side latency percentiles of one bench phase, as recorded in
/// the `results/serve_throughput.json` artifact.
fn latency_percentiles(r: &RunResult) -> Json {
    Json::obj(vec![
        ("p50", Json::Num(r.percentile_us(50.0) as f64)),
        ("p90", Json::Num(r.percentile_us(90.0) as f64)),
        ("p95", Json::Num(r.percentile_us(95.0) as f64)),
        ("p99", Json::Num(r.percentile_us(99.0) as f64)),
    ])
}

/// Prints per-phase latency-percentile deltas between the fresh bench
/// artifact and a previously written one, using the shared verdict rule
/// from [`ntr_obs::compare`]. Informational only — the exit code is
/// unaffected.
fn print_baseline_deltas(current: &Json, baseline_path: &str) -> Result<(), String> {
    use ntr_obs::compare::{classify, shift_pct, Measurement};

    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    let baseline = Json::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;

    println!("vs baseline {baseline_path}:");
    println!(
        "  {:<28} {:>10} {:>10} {:>8}  verdict",
        "phase", "base us", "now us", "shift"
    );
    for phase in ["single_worker_latency_us", "four_worker_latency_us"] {
        for pct in ["p50", "p90", "p95", "p99"] {
            let read = |doc: &Json| {
                doc.get(phase)
                    .and_then(|p| p.get(pct))
                    .and_then(Json::as_f64)
            };
            let (Some(base), Some(now)) = (read(&baseline), read(current)) else {
                println!("  {phase}.{pct:<24} missing on one side, skipped");
                continue;
            };
            let verdict = classify(
                Measurement::point(base),
                Measurement::point(now),
                ntr_obs::compare::DEFAULT_THRESHOLD_PCT,
            );
            println!(
                "  {:<28} {:>10.0} {:>10.0} {:>+7.1}%  {}",
                format!("{phase}.{pct}"),
                base,
                now,
                shift_pct(base, now),
                verdict.as_str()
            );
        }
    }
    Ok(())
}

fn bench(serve_bin: &PathBuf, w: Workload, out: Option<&str>, baseline: Option<&str>) -> i32 {
    let requests = generate_requests(w);
    let single = match run_against_server(serve_bin, 1, &requests, None, None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench (1 worker) FAILED: {e}");
            return 1;
        }
    };
    print_summary("1 worker ", &single);
    let four = match run_against_server(serve_bin, 4, &requests, None, None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench (4 workers) FAILED: {e}");
            return 1;
        }
    };
    print_summary("4 workers", &four);
    let speedup = four.nets_per_sec() / single.nets_per_sec().max(1e-9);
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("speedup: {speedup:.2}x on {host_cores} host core(s)");
    if host_cores < 2 {
        println!("note: single-core host; worker scaling cannot show here");
    }

    let artifact = Json::obj(vec![
        ("host_cores", Json::Num(host_cores as f64)),
        ("nets", Json::Num(w.nets as f64)),
        ("size", Json::Num(w.size as f64)),
        ("repeat_fraction", Json::Num(w.repeat)),
        ("seed", Json::Num(w.seed as f64)),
        ("workload", Json::str("alternating ldrg/h1, moment oracle")),
        ("single_worker_nps", Json::Num(single.nets_per_sec())),
        ("four_worker_nps", Json::Num(four.nets_per_sec())),
        ("speedup", Json::Num(speedup)),
        ("cache_hit_rate", Json::Num(four.cache_hit_rate())),
        ("errors", Json::Num((single.errors + four.errors) as f64)),
        ("single_worker_latency_us", latency_percentiles(&single)),
        ("four_worker_latency_us", latency_percentiles(&four)),
    ]);
    // Compare before overwriting: `--baseline` may point at the same
    // path `--out` is about to replace.
    if let Some(baseline_path) = baseline {
        if let Err(e) = print_baseline_deltas(&artifact, baseline_path) {
            eprintln!("baseline comparison skipped: {e}");
        }
    }
    if let Some(path) = out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, artifact.to_line() + "\n") {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        println!("wrote {path}");
    }
    i32::from(single.errors + four.errors > 0)
}

fn main() -> std::process::ExitCode {
    let mut stdio = false;
    let mut smoke_mode = false;
    let mut bench_mode = false;
    let mut chaos_mode = false;
    let mut sessions_mode = false;
    let mut workload = Workload {
        nets: 150,
        size: 20,
        repeat: 0.2,
        seed: 1994,
    };
    let mut workers = 4usize;
    let mut rate: Option<f64> = None;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut serve_bin_arg: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--smoke" => smoke_mode = true,
            "--bench" => bench_mode = true,
            "--chaos" => chaos_mode = true,
            "--sessions" => sessions_mode = true,
            "--nets" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => workload.nets = n,
                _ => usage(),
            },
            "--size" => match args.next().and_then(|v| v.parse().ok()) {
                Some(k) if k >= 2 => workload.size = k,
                _ => usage(),
            },
            "--repeat" => match args.next().and_then(|v| v.parse().ok()) {
                Some(f) if (0.0..=1.0).contains(&f) => workload.repeat = f,
                _ => usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => usage(),
            },
            "--rate" => match args.next().and_then(|v| v.parse().ok()) {
                Some(r) if r > 0.0 => rate = Some(r),
                _ => usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => workload.seed = s,
                None => usage(),
            },
            "--out" => out = args.next().or_else(|| usage()),
            "--baseline" => baseline = args.next().or_else(|| usage()),
            "--serve-bin" => serve_bin_arg = args.next().or_else(|| usage()),
            _ => usage(),
        }
    }
    if !stdio {
        // Only the spawned-child stdio harness exists; require the flag so
        // a future TCP client mode stays backward compatible.
        usage();
    }
    let serve_bin = locate_serve_bin(serve_bin_arg.as_deref());
    if !serve_bin.exists() {
        eprintln!(
            "ntr-loadgen: server binary not found at {}",
            serve_bin.display()
        );
        return std::process::ExitCode::FAILURE;
    }

    if baseline.is_some() && !bench_mode {
        eprintln!("--baseline compares bench artifacts; add --bench");
        return std::process::ExitCode::from(2);
    }
    let code = if chaos_mode {
        chaos(&serve_bin, workload.seed, smoke_mode)
    } else if sessions_mode {
        sessions_gate(&serve_bin, workload.seed, smoke_mode)
    } else if smoke_mode {
        smoke(&serve_bin, workload.seed)
    } else if bench_mode {
        bench(
            &serve_bin,
            workload,
            Some(out.as_deref().unwrap_or("results/serve_throughput.json")),
            baseline.as_deref(),
        )
    } else {
        let requests = generate_requests(workload);
        match run_against_server(&serve_bin, workers, &requests, rate, None) {
            Ok(r) => {
                print_summary("run", &r);
                i32::from(r.errors > 0)
            }
            Err(e) => {
                eprintln!("run FAILED: {e}");
                1
            }
        }
    };
    if code == 0 {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
