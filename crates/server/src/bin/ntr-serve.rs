//! The routing server.
//!
//! ```text
//! ntr-serve --stdio [--workers N] [--queue N] [--cache N]
//! ntr-serve --listen 127.0.0.1:7474 [--workers N] [--queue N] [--cache N]
//! ```
//!
//! Speaks the JSON-lines protocol of `ntr_server::proto`: one request
//! object per line, one response per line, correlated by `id`.

use std::process::ExitCode;
use std::sync::Arc;

use ntr_obs::{log_error, log_info};
use ntr_server::http::spawn_metrics_server;
use ntr_server::server::{serve_stdio, serve_tcp};
use ntr_server::service::{Service, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: ntr-serve (--stdio | --listen ADDR:PORT)\n\
         \x20              [--workers N]          worker threads (default: one per core)\n\
         \x20              [--queue N]            pending-request capacity (default 64)\n\
         \x20              [--cache N]            result-cache entries (default 1024, 0 disables)\n\
         \x20              [--session-capacity N] live rerouting sessions admitted (default 64)\n\
         \x20              [--session-ttl SECS]   idle-session eviction deadline (default 300)\n\
         \x20              [--metrics-addr A:P]   serve GET /metrics, /statusz, /journal,\n\
         \x20                                     /tsdb, /alertz, /profilez here\n\
         \x20              [--journal-out FILE]   dump the flight recorder (JSON-lines) at\n\
         \x20                                     drain or panic (post-mortem)\n\
         \x20              [--sampler-hz N]       sampling-profiler rate (default 97, 0 off)\n\
         \x20              [--slo SPEC]           add an SLO (repeatable), e.g.\n\
         \x20                                     'latency:99:50ms:1h' or 'availability:99.9:1h'\n\
         \n\
         Logging is controlled by NTR_LOG (off|error|warn|info|debug|trace, default info).\n\
         NTR_SLOS is a ';'-separated SLO list used when no --slo flag is given\n\
         (set it empty to disable the built-in defaults).\n\
         NTR_FAULTS installs a fault-injection plan at startup, e.g.\n\
         NTR_FAULTS='seed=1994;fail=transient:0.5;slow=moment:0.1:5;stall=0.05:2'."
    );
    std::process::exit(2);
}

/// Writes the flight recorder to `path` as JSON-lines. Called on the
/// way out — normal drain or panic — so a crashed server still leaves
/// its last few thousand wide events behind.
fn dump_journal(path: &str) {
    let lines = ntr_obs::Journal::global().snapshot().to_json_lines();
    match std::fs::write(path, &lines) {
        Ok(()) => log_info!("flight recorder dumped to {path}"),
        Err(e) => log_error!("cannot dump flight recorder to {path}: {e}"),
    }
}

fn main() -> ExitCode {
    let mut stdio = false;
    let mut listen: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut journal_out: Option<String> = None;
    let mut sampler_hz = ntr_obs::sampler::DEFAULT_HZ;
    let mut slo_flags: Vec<String> = Vec::new();
    let mut config = ServiceConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--listen" => listen = args.next().or_else(|| usage()),
            "--metrics-addr" => metrics_addr = args.next().or_else(|| usage()),
            "--journal-out" => journal_out = args.next().or_else(|| usage()),
            "--sampler-hz" => match args.next().and_then(|v| v.parse().ok()) {
                Some(hz) => sampler_hz = hz,
                None => usage(),
            },
            "--slo" => slo_flags.push(args.next().unwrap_or_else(|| usage())),
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.workers = n,
                None => usage(),
            },
            "--queue" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.queue_depth = n,
                _ => usage(),
            },
            "--cache" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.cache_capacity = n,
                None => usage(),
            },
            "--session-capacity" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.session_capacity = n,
                _ => usage(),
            },
            "--session-ttl" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(secs) if secs >= 1 => {
                    config.session_ttl = std::time::Duration::from_secs(secs);
                }
                _ => usage(),
            },
            _ => usage(),
        }
    }

    // SLOs: --slo flags replace the defaults; otherwise NTR_SLOS does
    // (an empty NTR_SLOS disables SLOs entirely); otherwise the
    // built-in defaults stand.
    if !slo_flags.is_empty() {
        config.slos.clear();
        for spec in &slo_flags {
            match ntr_obs::slo::SloSpec::parse(spec) {
                Ok(s) => config.slos.push(s),
                Err(reason) => {
                    log_error!("bad --slo {spec:?}: {reason}");
                    return ExitCode::FAILURE;
                }
            }
        }
    } else if let Ok(list) = std::env::var("NTR_SLOS") {
        match ntr_obs::slo::SloSpec::parse_list(&list) {
            Ok(specs) => config.slos = specs,
            Err(reason) => {
                log_error!("bad NTR_SLOS: {reason}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Ok(text) = std::env::var("NTR_FAULTS") {
        match ntr_core::FaultPlan::parse(&text) {
            Ok(plan) if plan.is_empty() => {}
            Ok(plan) => {
                log_info!("fault plan installed: {}", plan.source());
                config.faults = Some(Arc::new(plan));
            }
            Err(reason) => {
                log_error!("bad NTR_FAULTS: {reason}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Post-mortem: a panic anywhere in the process dumps the recorder
    // before the default hook prints the backtrace, so the journal
    // survives exactly the runs that need forensics.
    if let Some(path) = journal_out.clone() {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_journal(&path);
            default_hook(info);
        }));
    }

    if sampler_hz > 0 && ntr_obs::sampler::start(sampler_hz) {
        log_info!("sampling profiler on at {sampler_hz} Hz");
    }

    let service = Arc::new(Service::start(&config));
    if let Some(addr) = metrics_addr {
        match spawn_metrics_server(addr.as_str(), Arc::clone(&service)) {
            Ok((local, _handle)) => log_info!("serving GET /metrics on {local}"),
            Err(e) => {
                log_error!("cannot serve metrics on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let code = match (stdio, listen) {
        (true, None) => {
            serve_stdio(service);
            ExitCode::SUCCESS
        }
        (false, Some(addr)) => {
            log_info!("listening on {addr}");
            match serve_tcp(addr.as_str(), service) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    log_error!("cannot listen on {addr}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    };
    // Normal drain: every accepted request has been answered and
    // journaled by the time the transports return.
    if let Some(path) = journal_out {
        dump_journal(&path);
    }
    code
}
