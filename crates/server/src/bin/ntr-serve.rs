//! The routing server.
//!
//! ```text
//! ntr-serve --stdio [--workers N] [--queue N] [--cache N]
//! ntr-serve --listen 127.0.0.1:7474 [--workers N] [--queue N] [--cache N]
//! ```
//!
//! Speaks the JSON-lines protocol of `ntr_server::proto`: one request
//! object per line, one response per line, correlated by `id`.

use std::process::ExitCode;
use std::sync::Arc;

use ntr_server::server::{serve_stdio, serve_tcp};
use ntr_server::service::{Service, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: ntr-serve (--stdio | --listen ADDR:PORT)\n\
         \x20              [--workers N]  worker threads (default: one per core)\n\
         \x20              [--queue N]    pending-request capacity (default 64)\n\
         \x20              [--cache N]    result-cache entries (default 1024, 0 disables)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut stdio = false;
    let mut listen: Option<String> = None;
    let mut config = ServiceConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--listen" => listen = args.next().or_else(|| usage()),
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.workers = n,
                None => usage(),
            },
            "--queue" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.queue_depth = n,
                _ => usage(),
            },
            "--cache" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.cache_capacity = n,
                None => usage(),
            },
            _ => usage(),
        }
    }

    match (stdio, listen) {
        (true, None) => {
            serve_stdio(Arc::new(Service::start(&config)));
            ExitCode::SUCCESS
        }
        (false, Some(addr)) => {
            eprintln!("ntr-serve: listening on {addr}");
            match serve_tcp(addr.as_str(), Arc::new(Service::start(&config))) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("ntr-serve: cannot listen on {addr}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
