//! `GET /statusz`: a live, human-first dashboard for one glance at a
//! running server.
//!
//! `/metrics` is for scrapers and `{"op":"stats"}` is for programs; both
//! report *lifetime* aggregates, which go stale the moment traffic
//! changes — a morning load spike pollutes the p99 all day. `/statusz`
//! answers the operator's actual question ("how is the server doing
//! *right now*?") from two recency-bounded sources:
//!
//! - **Sliding latency percentiles** from the service's
//!   [`WindowedHistogram`](ntr_obs::metrics::WindowedHistogram) — the
//!   last [`STATUSZ_WINDOWS`](crate::stats::STATUSZ_WINDOWS) ×
//!   [`STATUSZ_WINDOW_LEN`](crate::stats::STATUSZ_WINDOW_LEN) (~1 min),
//!   with expired windows genuinely forgotten.
//! - **Recent request rates** (cache hits, degradations, errors) over
//!   the flight recorder's request ring — the last few thousand wide
//!   events, whatever wall-clock span they cover.
//!
//! Plus the degradation gate's live inputs: the per-fidelity EWMA cost
//! estimates the engine consults before descending the ladder.
//!
//! The page is self-contained HTML with no scripts or external assets —
//! `curl`-able, and renderable in a browser pointed at the metrics port.

use ntr_core::Fidelity;
use ntr_obs::Journal;

use crate::service::Service;
use crate::stats::{build_git_hash, build_version};

/// Content type of the `/statusz` page.
pub const STATUSZ_CONTENT_TYPE: &str = "text/html; charset=utf-8";

fn fmt_rate(hits: usize, total: usize) -> String {
    if total == 0 {
        "n/a".to_owned()
    } else {
        format!(
            "{:.1}% ({hits}/{total})",
            100.0 * hits as f64 / total as f64
        )
    }
}

fn row(out: &mut String, label: &str, value: &str) {
    out.push_str("<tr><td>");
    out.push_str(label);
    out.push_str("</td><td>");
    out.push_str(value);
    out.push_str("</td></tr>\n");
}

fn section(out: &mut String, title: &str) {
    out.push_str("</table>\n<h2>");
    out.push_str(title);
    out.push_str("</h2>\n<table>\n");
}

/// Renders the dashboard for one service.
#[must_use]
pub fn render(service: &Service) -> String {
    let stats = service.stats();
    let sliding = stats.window_latency.sliding();
    let lifetime = &stats.latency;
    let snapshot = Journal::global().snapshot();
    let recent = &snapshot.requests;
    let n = recent.len();
    let cache_hits = recent.iter().filter(|e| e.cache_hit).count();
    let degraded = recent.iter().filter(|e| e.degradation_steps > 0).count();
    let errored = recent.iter().filter(|e| e.outcome != "ok").count();

    let mut out = String::with_capacity(4096);
    out.push_str(
        "<!DOCTYPE html>\n<html><head><title>ntr-serve statusz</title>\n\
         <style>body{font-family:monospace;margin:2em}table{border-collapse:collapse}\
         td{border:1px solid #999;padding:2px 10px}h2{margin-bottom:4px}</style>\n\
         </head><body>\n<h1>ntr-serve /statusz</h1>\n<table>\n",
    );
    row(&mut out, "version", build_version());
    row(&mut out, "git", build_git_hash());
    row(
        &mut out,
        "uptime",
        &format!("{:.1} s", stats.uptime_seconds()),
    );

    section(&mut out, "latency — sliding window (~1 min)");
    row(&mut out, "samples", &sliding.count().to_string());
    for p in [50.0, 90.0, 99.0] {
        row(
            &mut out,
            &format!("p{p:.0}"),
            &format!("{} µs", sliding.percentile_micros(p)),
        );
    }
    row(
        &mut out,
        "lifetime p50 / p99",
        &format!(
            "{} / {} µs",
            lifetime.percentile_micros(50.0),
            lifetime.percentile_micros(99.0)
        ),
    );

    section(
        &mut out,
        &format!("rates — last {n} journaled requests (process-wide)"),
    );
    row(&mut out, "cache hit", &fmt_rate(cache_hits, n));
    row(&mut out, "degraded", &fmt_rate(degraded, n));
    row(&mut out, "errored", &fmt_rate(errored, n));

    section(&mut out, "degradation gate — EWMA cost per fidelity rung");
    let costs = service.fidelity_costs();
    for f in Fidelity::ALL {
        row(
            &mut out,
            f.as_str(),
            &format!("{} µs", costs.estimate(f).as_micros()),
        );
    }

    section(&mut out, "load");
    row(&mut out, "queue depth", &service.queue_len().to_string());
    row(
        &mut out,
        "inflight",
        &stats.inflight_requests.get().to_string(),
    );
    row(&mut out, "cache entries", &service.cache_len().to_string());

    section(&mut out, "lifetime counters");
    for (label, value) in [
        ("received", stats.received.get()),
        ("completed", stats.completed.get()),
        ("errors", stats.errors.get()),
        ("overloaded", stats.overloaded.get()),
        ("deadline expired", stats.deadline_expired.get()),
        ("coalesced", stats.coalesced.get()),
        ("retries", stats.retries.get()),
        ("faults injected", service.faults_injected()),
    ] {
        row(&mut out, label, &value.to_string());
    }

    section(&mut out, "flight recorder");
    row(
        &mut out,
        "requests recorded / dropped",
        &format!(
            "{} / {}",
            snapshot.request_stats.recorded, snapshot.request_stats.dropped
        ),
    );
    row(
        &mut out,
        "iterations recorded / dropped",
        &format!(
            "{} / {}",
            snapshot.iteration_stats.recorded, snapshot.iteration_stats.dropped
        ),
    );
    row(
        &mut out,
        "exemplars held",
        &snapshot.exemplars.len().to_string(),
    );
    row(
        &mut out,
        "journal dropped total",
        &(snapshot.request_stats.dropped + snapshot.iteration_stats.dropped).to_string(),
    );

    section(&mut out, "SLO burn-rate alerts");
    let alerts = service.slo().snapshot();
    if alerts.is_empty() {
        row(&mut out, "(none configured)", "");
    }
    for alert in &alerts {
        row(
            &mut out,
            &alert.name,
            &format!(
                "{} — fast {:.2}x / slow {:.2}x over {}s (fired {}, cleared {})",
                if alert.firing { "FIRING" } else { "ok" },
                alert.fast_burn,
                alert.slow_burn,
                alert.window_secs,
                alert.fired_total,
                alert.cleared_total
            ),
        );
    }

    section(&mut out, "sparklines — last 5 min, 1 s resolution");
    for metric in [
        "ntr_requests_completed_total",
        "ntr_request_latency_us_p99",
        "ntr_queue_depth",
    ] {
        let values = service.tsdb().spark_values(metric, 1);
        row(
            &mut out,
            metric,
            &ntr_obs::tsdb::sparkline_svg(&values, 300, 32),
        );
    }
    out.push_str(
        "</table>\n<p>see also: <a href=\"/metrics\">/metrics</a> · \
         <a href=\"/journal\">/journal</a> · <a href=\"/tsdb\">/tsdb</a> · \
         <a href=\"/alertz\">/alertz</a> · <a href=\"/profilez\">/profilez</a></p>\n\
         </body></html>\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    #[test]
    fn statusz_renders_the_core_sections() {
        let service = Service::start(&ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let page = render(&service);
        for needle in [
            "<!DOCTYPE html>",
            "sliding window",
            "cache hit",
            "EWMA cost per fidelity rung",
            "flight recorder",
            "journal dropped total",
            "SLO burn-rate alerts",
            "sparklines",
            "<svg",
            "p99",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
        service.shutdown();
    }
}
