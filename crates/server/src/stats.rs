//! Service-level counters: request outcomes, per-algorithm tallies,
//! latency histograms, and merged search-cost counters.
//!
//! Every hot counter is a handle into the service's own
//! [`MetricsRegistry`] (one registry per [`Service`](crate::Service)
//! instance, so embedded services and tests stay isolated), which makes
//! the same numbers available three ways: the `{"op":"stats"}` JSON
//! snapshot, the `{"op":"metrics"}` / `GET /metrics` Prometheus
//! exposition, and direct reads in tests. Updates are single relaxed
//! atomic operations, safe from worker threads and the submission path
//! concurrently. The two cold aggregates (per-algorithm map, merged
//! [`OracleStats`]) sit behind mutexes taken once per completed request.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ntr_core::{OracleStats, ReroutePath};
use ntr_obs::metrics::{Counter, Gauge, Histogram, MetricsRegistry, WindowedHistogram};

use crate::json::Json;

/// The latency histogram type (power-of-two buckets, rehomed to
/// [`ntr_obs::metrics::Histogram`]); the old name stays for callers.
pub type LatencyHistogram = Histogram;

/// Git revision baked in at build time (absent in plain builds).
const GIT_HASH: Option<&str> = option_env!("NTR_GIT_HASH");

/// The crate version, for deploy identification in scrapes.
#[must_use]
pub fn build_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// Sliding-window shape behind `/statusz`: 12 windows of 5 s — a
/// 55–60 s view that forgets a load spike within a minute, unlike the
/// lifetime histogram which never does.
pub const STATUSZ_WINDOWS: usize = 12;

/// Length of one `/statusz` latency window.
pub const STATUSZ_WINDOW_LEN: Duration = Duration::from_secs(5);

/// The baked-in git hash, or `"unknown"`.
#[must_use]
pub fn build_git_hash() -> &'static str {
    GIT_HASH.unwrap_or("unknown")
}

/// All counters surfaced by `{"op":"stats"}` and `/metrics`.
#[derive(Debug)]
pub struct ServiceStats {
    registry: MetricsRegistry,
    started: Instant,
    /// Route requests accepted off the wire.
    pub received: Arc<Counter>,
    /// Route requests answered successfully (cached or routed).
    pub completed: Arc<Counter>,
    /// Route requests answered with a `route` error.
    pub errors: Arc<Counter>,
    /// Requests rejected with `overloaded` (queue full).
    pub overloaded: Arc<Counter>,
    /// Requests answered with `deadline`.
    pub deadline_expired: Arc<Counter>,
    /// Responses served from the result cache.
    pub cache_hits: Arc<Counter>,
    /// Cache-eligible requests that missed.
    pub cache_misses: Arc<Counter>,
    /// Duplicate requests that attached to an identical in-flight route
    /// instead of routing again.
    pub coalesced: Arc<Counter>,
    /// Jobs currently waiting in the bounded queue (refreshed at
    /// snapshot time from the queue itself).
    pub queue_depth: Arc<Gauge>,
    /// Jobs a worker has dequeued but not yet answered (incremented at
    /// dequeue, decremented at response — live, not snapshot-refreshed).
    pub inflight_requests: Arc<Gauge>,
    /// Entries currently held by the result cache (refreshed at
    /// snapshot time).
    pub cache_entries: Arc<Gauge>,
    /// End-to-end latency of successful non-cached routes (enqueue to
    /// response).
    pub latency: Arc<Histogram>,
    /// The same latencies over a sliding window (the `/statusz` view;
    /// not in the registry — Prometheus computes its own windows).
    pub window_latency: WindowedHistogram,
    /// Spans lost to collector overflow (mirrors the process-global
    /// [`ntr_obs::span::dropped_spans`]; refreshed at scrape time so
    /// trace truncation is visible in `/metrics`).
    pub spans_dropped: Arc<Counter>,
    /// Flight-recorder events lost to ring contention, requests and
    /// iterations combined (mirrors the process-global
    /// [`Journal`](ntr_obs::Journal) ring drop counts at scrape time —
    /// PR 8 counted these losses, this exports them).
    pub journal_dropped: Arc<Counter>,
    /// Requests served below their requested fidelity (deadline pressure
    /// or exhausted retries walked the degradation ladder).
    pub degraded: Arc<Counter>,
    /// Transient-failure retries spent across all requests.
    pub retries: Arc<Counter>,
    /// Faults injected by the installed fault plan (mirrors the
    /// service's [`Resilience`](crate::engine::Resilience) total at
    /// scrape/snapshot time).
    pub faults_injected: Arc<Counter>,
    /// Candidate edges emitted by the generators of completed requests.
    pub candidates_generated: Arc<Counter>,
    /// Candidate edges actually scored by oracle sweeps.
    pub candidates_scored: Arc<Counter>,
    /// Candidate edges spatial pruning skipped (exhaustive universe
    /// minus generated).
    pub candidates_pruned: Arc<Counter>,
    /// Live incremental-rerouting sessions (refreshed at snapshot time
    /// from the session table).
    pub sessions_active: Arc<Gauge>,
    /// Sessions opened by `session.create`.
    pub sessions_created: Arc<Counter>,
    /// Sessions ended by `session.close`.
    pub sessions_closed: Arc<Counter>,
    /// Sessions reclaimed by TTL eviction.
    pub sessions_evicted: Arc<Counter>,
    /// `session.*` ops rejected with the structured `session` error
    /// (unknown/expired handle, invalid delta, full table).
    pub session_errors: Arc<Counter>,
    /// Delta ops accepted by `session.mutate`.
    pub session_mutations: Arc<Counter>,
    /// Session reroutes answered from the cached outcome (no pending
    /// deltas).
    pub session_reroutes_quiescent: Arc<Counter>,
    /// Session reroutes answered by the Sherman–Morrison rank-1 path.
    pub session_reroutes_rank1: Arc<Counter>,
    /// Session reroutes answered by same-pattern refactorization.
    pub session_reroutes_refactor: Arc<Counter>,
    /// Session reroutes that fell to a from-scratch route.
    pub session_reroutes_scratch: Arc<Counter>,
    per_algorithm: Mutex<BTreeMap<&'static str, u64>>,
    oracle: Mutex<OracleStats>,
}

impl Default for ServiceStats {
    fn default() -> Self {
        let registry = MetricsRegistry::new();
        let counter = |name, help| registry.counter(name, help);
        Self {
            received: counter("ntr_requests_received_total", "Route requests accepted"),
            completed: counter(
                "ntr_requests_completed_total",
                "Route requests answered successfully",
            ),
            errors: counter(
                "ntr_request_errors_total",
                "Route requests answered with a route error",
            ),
            overloaded: counter(
                "ntr_requests_overloaded_total",
                "Requests rejected because the queue was full",
            ),
            deadline_expired: counter(
                "ntr_deadline_expired_total",
                "Requests whose deadline expired before completion",
            ),
            cache_hits: counter(
                "ntr_cache_hits_total",
                "Responses served from the result cache",
            ),
            cache_misses: counter(
                "ntr_cache_misses_total",
                "Cache-eligible requests that missed",
            ),
            coalesced: counter(
                "ntr_requests_coalesced_total",
                "Duplicates attached to an identical in-flight route",
            ),
            queue_depth: registry.gauge("ntr_queue_depth", "Jobs waiting in the bounded queue"),
            inflight_requests: registry.gauge(
                "ntr_inflight_requests",
                "Jobs dequeued by a worker but not yet answered",
            ),
            cache_entries: registry.gauge("ntr_cache_entries", "Entries in the result cache"),
            latency: registry.histogram(
                "ntr_request_latency_us",
                "End-to-end latency of non-cached routes, microseconds",
            ),
            window_latency: WindowedHistogram::new(STATUSZ_WINDOWS, STATUSZ_WINDOW_LEN),
            spans_dropped: counter(
                "ntr_spans_dropped_total",
                "Trace spans lost to collector overflow",
            ),
            journal_dropped: counter(
                "ntr_journal_dropped_total",
                "Flight-recorder events lost to ring contention",
            ),
            degraded: counter(
                "ntr_requests_degraded_total",
                "Requests served below their requested fidelity",
            ),
            retries: counter(
                "ntr_retries_total",
                "Transient-failure retries spent on route requests",
            ),
            faults_injected: counter(
                "ntr_faults_injected_total",
                "Faults injected by the installed fault plan",
            ),
            candidates_generated: counter(
                "ntr_candidates_generated_total",
                "Candidate edges emitted by candidate generators",
            ),
            candidates_scored: counter(
                "ntr_candidates_scored_total",
                "Candidate edges scored by oracle sweeps",
            ),
            candidates_pruned: counter(
                "ntr_candidates_pruned_total",
                "Candidate edges skipped by spatial pruning",
            ),
            sessions_active: registry
                .gauge("ntr_sessions_active", "Live incremental-rerouting sessions"),
            sessions_created: counter(
                "ntr_sessions_created_total",
                "Sessions opened by session.create",
            ),
            sessions_closed: counter(
                "ntr_sessions_closed_total",
                "Sessions ended by session.close",
            ),
            sessions_evicted: counter(
                "ntr_sessions_evicted_total",
                "Sessions reclaimed by TTL eviction",
            ),
            session_errors: counter(
                "ntr_session_errors_total",
                "Session ops rejected with the structured session error",
            ),
            session_mutations: counter(
                "ntr_session_mutations_total",
                "Delta ops accepted by session.mutate",
            ),
            session_reroutes_quiescent: counter(
                "ntr_session_reroutes_quiescent_total",
                "Session reroutes answered from the cached outcome",
            ),
            session_reroutes_rank1: counter(
                "ntr_session_reroutes_rank1_total",
                "Session reroutes answered by the rank-1 path",
            ),
            session_reroutes_refactor: counter(
                "ntr_session_reroutes_refactor_total",
                "Session reroutes answered by same-pattern refactorization",
            ),
            session_reroutes_scratch: counter(
                "ntr_session_reroutes_scratch_total",
                "Session reroutes that fell to a from-scratch route",
            ),
            started: Instant::now(),
            registry,
            per_algorithm: Mutex::new(BTreeMap::new()),
            oracle: Mutex::new(OracleStats::default()),
        }
    }
}

impl ServiceStats {
    /// Credits one successfully routed (non-cached) request.
    pub fn record_completed(
        &self,
        algorithm: &'static str,
        latency: Duration,
        search: OracleStats,
        degraded: bool,
        retries: u32,
    ) {
        self.completed.inc();
        self.latency.record(latency);
        self.window_latency.record(latency);
        if degraded {
            self.degraded.inc();
        }
        self.retries.add(u64::from(retries));
        self.candidates_generated.add(search.candidates_generated);
        self.candidates_scored.add(search.candidates_scored);
        self.candidates_pruned.add(search.candidates_pruned);
        *self
            .per_algorithm
            .lock()
            .expect("stats mutex poisoned")
            .entry(algorithm)
            .or_insert(0) += 1;
        let mut merged = self.oracle.lock().expect("stats mutex poisoned");
        *merged = merged.merged(search);
    }

    /// Credits one answered session reroute to its decision-ladder path.
    pub fn record_session_reroute(&self, path: ReroutePath) {
        match path {
            ReroutePath::Quiescent => self.session_reroutes_quiescent.inc(),
            ReroutePath::Rank1 => self.session_reroutes_rank1.inc(),
            ReroutePath::Refactor => self.session_reroutes_refactor.inc(),
            ReroutePath::Scratch => self.session_reroutes_scratch.inc(),
        }
    }

    /// The merged search-cost counters across all completed requests.
    #[must_use]
    pub fn oracle_stats(&self) -> OracleStats {
        *self.oracle.lock().expect("stats mutex poisoned")
    }

    /// Seconds since this service started.
    #[must_use]
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The registry behind every counter here — what the embedded TSDB
    /// snapshots and the SLO engine registers its gauges into.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Refreshes the snapshot-time gauges and mirror counters.
    /// `queue_depth`, `cache_entries` and `faults_injected` come from
    /// the service, which owns those structures; called before every
    /// exposition render and once a second by the observability ticker
    /// so the TSDB snapshots fresh values.
    pub fn refresh_gauges(
        &self,
        queue_depth: usize,
        cache_entries: usize,
        faults_injected: u64,
        sessions_active: usize,
    ) {
        self.queue_depth.set(queue_depth as i64);
        self.cache_entries.set(cache_entries as i64);
        self.sessions_active.set(sessions_active as i64);
        // Mirror externally owned monotone totals into the registry's
        // counters without ever decrementing them.
        let global = ntr_obs::span::dropped_spans();
        self.spans_dropped
            .add(global.saturating_sub(self.spans_dropped.get()));
        self.faults_injected
            .add(faults_injected.saturating_sub(self.faults_injected.get()));
        let journal = ntr_obs::Journal::global();
        let journal_dropped =
            journal.request_ring_stats().dropped + journal.iteration_ring_stats().dropped;
        self.journal_dropped
            .add(journal_dropped.saturating_sub(self.journal_dropped.get()));
    }

    /// Prometheus text exposition of the registry, gauges and mirror
    /// counters refreshed first (see
    /// [`refresh_gauges`](Self::refresh_gauges)).
    #[must_use]
    pub fn prometheus(
        &self,
        queue_depth: usize,
        cache_entries: usize,
        faults_injected: u64,
        sessions_active: usize,
    ) -> String {
        self.refresh_gauges(queue_depth, cache_entries, faults_injected, sessions_active);
        ntr_obs::prometheus::render(&self.registry)
    }

    /// Snapshot as the body of a stats response. `queue_depth` and
    /// `cache_entries` come from the service, which owns those
    /// structures.
    #[must_use]
    pub fn to_json(
        &self,
        queue_depth: usize,
        cache_entries: usize,
        faults_injected: u64,
        sessions_active: usize,
    ) -> Json {
        self.faults_injected
            .add(faults_injected.saturating_sub(self.faults_injected.get()));
        let load = |c: &Counter| Json::Num(c.get() as f64);
        let per_algorithm = Json::Obj(
            self.per_algorithm
                .lock()
                .expect("stats mutex poisoned")
                .iter()
                .map(|(k, v)| ((*k).to_owned(), Json::Num(*v as f64)))
                .collect(),
        );
        let search = self.oracle_stats();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("op", Json::str("stats")),
            ("uptime_seconds", Json::Num(self.uptime_seconds())),
            ("version", Json::str(build_version())),
            ("git_hash", Json::str(build_git_hash())),
            ("received", load(&self.received)),
            ("completed", load(&self.completed)),
            ("errors", load(&self.errors)),
            ("overloaded", load(&self.overloaded)),
            ("deadline_expired", load(&self.deadline_expired)),
            ("cache_hits", load(&self.cache_hits)),
            ("cache_misses", load(&self.cache_misses)),
            ("coalesced", load(&self.coalesced)),
            ("degraded", load(&self.degraded)),
            ("retries", load(&self.retries)),
            ("faults_injected", load(&self.faults_injected)),
            ("cache_entries", Json::Num(cache_entries as f64)),
            ("queue_depth", Json::Num(queue_depth as f64)),
            (
                "sessions",
                Json::obj(vec![
                    ("active", Json::Num(sessions_active as f64)),
                    ("created", load(&self.sessions_created)),
                    ("closed", load(&self.sessions_closed)),
                    ("evicted", load(&self.sessions_evicted)),
                    ("errors", load(&self.session_errors)),
                    ("mutations", load(&self.session_mutations)),
                    ("reroutes_quiescent", load(&self.session_reroutes_quiescent)),
                    ("reroutes_rank1", load(&self.session_reroutes_rank1)),
                    ("reroutes_refactor", load(&self.session_reroutes_refactor)),
                    ("reroutes_scratch", load(&self.session_reroutes_scratch)),
                ]),
            ),
            ("per_algorithm", per_algorithm),
            ("latency", self.latency.to_json()),
            (
                "search",
                Json::obj(vec![
                    ("evaluations", Json::Num(search.evaluations as f64)),
                    ("factorizations", Json::Num(search.factorizations as f64)),
                    ("rank1_solves", Json::Num(search.rank1_solves as f64)),
                    (
                        "candidates_generated",
                        Json::Num(search.candidates_generated as f64),
                    ),
                    (
                        "candidates_scored",
                        Json::Num(search.candidates_scored as f64),
                    ),
                    (
                        "candidates_pruned",
                        Json::Num(search.candidates_pruned as f64),
                    ),
                    ("wall_ms", Json::Num(search.wall().as_secs_f64() * 1e3)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_obs::prometheus::check_exposition;

    #[test]
    fn stats_json_shape() {
        let s = ServiceStats::default();
        s.received.add(3);
        s.record_completed(
            "ldrg",
            Duration::from_micros(100),
            OracleStats::default(),
            true,
            2,
        );
        let j = s.to_json(2, 1, 5, 3);
        assert_eq!(j.get("received").and_then(Json::as_f64), Some(3.0));
        assert_eq!(j.get("completed").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("queue_depth").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("degraded").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("retries").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("faults_injected").and_then(Json::as_f64), Some(5.0));
        let per = j.get("per_algorithm").unwrap();
        assert_eq!(per.get("ldrg").and_then(Json::as_f64), Some(1.0));
        assert!(j.get("latency").unwrap().get("p50_us").is_some());
        assert!(j.get("uptime_seconds").and_then(Json::as_f64).unwrap() >= 0.0);
        assert_eq!(
            j.get("version").and_then(Json::as_str),
            Some(build_version())
        );
        assert!(j.get("git_hash").and_then(Json::as_str).is_some());
    }

    #[test]
    fn prometheus_snapshot_is_valid_and_carries_the_gauges() {
        let s = ServiceStats::default();
        s.received.add(5);
        s.record_completed(
            "ldrg",
            Duration::from_micros(700),
            OracleStats::default(),
            true,
            1,
        );
        s.inflight_requests.inc();
        let text = s.prometheus(4, 9, 3, 2);
        check_exposition(&text).unwrap();
        assert!(text.contains("ntr_requests_received_total 5"));
        assert!(text.contains("ntr_queue_depth 4"));
        assert!(text.contains("ntr_inflight_requests 1"));
        assert!(text.contains("ntr_cache_entries 9"));
        assert!(text.contains("ntr_request_latency_us_count 1"));
        assert!(text.contains("ntr_requests_degraded_total 1"));
        assert!(text.contains("ntr_retries_total 1"));
        assert!(text.contains("ntr_faults_injected_total 3"));
        assert!(
            text.contains("ntr_spans_dropped_total"),
            "dropped-span counter missing from exposition:\n{text}"
        );
        assert!(
            text.contains("ntr_journal_dropped_total"),
            "journal-drop counter missing from exposition:\n{text}"
        );
    }

    #[test]
    fn fault_mirror_never_decrements() {
        let s = ServiceStats::default();
        let _ = s.prometheus(0, 0, 7, 0);
        assert_eq!(s.faults_injected.get(), 7);
        let _ = s.prometheus(0, 0, 4, 0); // stale reading — ignored
        assert_eq!(s.faults_injected.get(), 7);
    }

    #[test]
    fn completed_requests_feed_the_sliding_window() {
        let s = ServiceStats::default();
        s.record_completed(
            "ldrg",
            Duration::from_micros(300),
            OracleStats::default(),
            false,
            0,
        );
        assert_eq!(s.window_latency.sliding().count(), 1);
        assert!(s.window_latency.percentile_micros(50.0) >= 256);
    }

    #[test]
    fn two_services_do_not_share_counters() {
        let a = ServiceStats::default();
        let b = ServiceStats::default();
        a.received.add(7);
        assert_eq!(b.received.get(), 0);
    }
}
