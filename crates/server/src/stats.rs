//! Service-level counters: request outcomes, per-algorithm tallies,
//! latency histograms, and merged search-cost counters.
//!
//! Everything here is updated from worker threads and the submission
//! path concurrently, so the hot counters are atomics and the two cold
//! aggregates (per-algorithm map, merged [`OracleStats`]) sit behind
//! mutexes taken once per completed request.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ntr_core::OracleStats;

use crate::json::Json;

/// Power-of-two latency histogram: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 also takes sub-microsecond
/// samples).
///
/// Percentiles are answered with the upper bound of the bucket the
/// rank falls in, so a reported p99 is within 2× of the true value —
/// plenty for spotting queueing collapse, which moves latencies by
/// orders of magnitude.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 40],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn bucket_of(micros: u64) -> usize {
        // 63 - leading_zeros == floor(log2), clamped into range.
        let idx = 63 - micros.max(1).leading_zeros() as usize;
        idx.min(39)
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound (µs) of the bucket containing the `p`-th percentile
    /// (`p` in 0..=100), or 0 with no samples.
    #[must_use]
    pub fn percentile_micros(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << 40
    }

    /// Mean latency in microseconds, or 0 with no samples.
    #[must_use]
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Num(self.count() as f64)),
            ("mean_us", Json::Num(self.mean_micros() as f64)),
            ("p50_us", Json::Num(self.percentile_micros(50.0) as f64)),
            ("p90_us", Json::Num(self.percentile_micros(90.0) as f64)),
            ("p99_us", Json::Num(self.percentile_micros(99.0) as f64)),
        ])
    }
}

/// All counters surfaced by the `{"op":"stats"}` request.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Route requests accepted off the wire.
    pub received: AtomicU64,
    /// Route requests answered successfully (cached or routed).
    pub completed: AtomicU64,
    /// Route requests answered with a `route` error.
    pub errors: AtomicU64,
    /// Requests rejected with `overloaded` (queue full).
    pub overloaded: AtomicU64,
    /// Requests answered with `deadline`.
    pub deadline_expired: AtomicU64,
    /// Responses served from the result cache.
    pub cache_hits: AtomicU64,
    /// Cache-eligible requests that missed.
    pub cache_misses: AtomicU64,
    /// Duplicate requests that attached to an identical in-flight route
    /// instead of routing again.
    pub coalesced: AtomicU64,
    /// End-to-end latency of successful non-cached routes (enqueue to
    /// response).
    pub latency: LatencyHistogram,
    per_algorithm: Mutex<BTreeMap<&'static str, u64>>,
    oracle: Mutex<OracleStats>,
}

impl ServiceStats {
    /// Credits one successfully routed (non-cached) request.
    pub fn record_completed(
        &self,
        algorithm: &'static str,
        latency: Duration,
        search: OracleStats,
    ) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
        *self
            .per_algorithm
            .lock()
            .expect("stats mutex poisoned")
            .entry(algorithm)
            .or_insert(0) += 1;
        let mut merged = self.oracle.lock().expect("stats mutex poisoned");
        *merged = merged.merged(search);
    }

    /// The merged search-cost counters across all completed requests.
    #[must_use]
    pub fn oracle_stats(&self) -> OracleStats {
        *self.oracle.lock().expect("stats mutex poisoned")
    }

    /// Snapshot as the body of a stats response. `queue_depth` and
    /// `cache_entries` come from the service, which owns those
    /// structures.
    #[must_use]
    pub fn to_json(&self, queue_depth: usize, cache_entries: usize) -> Json {
        let load = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
        let per_algorithm = Json::Obj(
            self.per_algorithm
                .lock()
                .expect("stats mutex poisoned")
                .iter()
                .map(|(k, v)| ((*k).to_owned(), Json::Num(*v as f64)))
                .collect(),
        );
        let search = self.oracle_stats();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("op", Json::str("stats")),
            ("received", load(&self.received)),
            ("completed", load(&self.completed)),
            ("errors", load(&self.errors)),
            ("overloaded", load(&self.overloaded)),
            ("deadline_expired", load(&self.deadline_expired)),
            ("cache_hits", load(&self.cache_hits)),
            ("cache_misses", load(&self.cache_misses)),
            ("coalesced", load(&self.coalesced)),
            ("cache_entries", Json::Num(cache_entries as f64)),
            ("queue_depth", Json::Num(queue_depth as f64)),
            ("per_algorithm", per_algorithm),
            ("latency", self.latency.to_json()),
            (
                "search",
                Json::obj(vec![
                    ("evaluations", Json::Num(search.evaluations as f64)),
                    ("factorizations", Json::Num(search.factorizations as f64)),
                    ("rank1_solves", Json::Num(search.rank1_solves as f64)),
                    ("wall_ms", Json::Num(search.wall().as_secs_f64() * 1e3)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 39);
    }

    #[test]
    fn percentiles_bound_the_samples() {
        let h = LatencyHistogram::default();
        for micros in [10u64, 20, 40, 80, 5000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 5);
        // Rank 3 of 5 is the 40 µs sample, bucket [32,64) → upper bound 64.
        assert_eq!(h.percentile_micros(50.0), 64);
        // p99 falls in the bucket of 5000 µs = [4096,8192).
        assert_eq!(h.percentile_micros(99.0), 8192);
        assert!(h.mean_micros() >= 1000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile_micros(99.0), 0);
        assert_eq!(h.mean_micros(), 0);
    }

    #[test]
    fn stats_json_shape() {
        let s = ServiceStats::default();
        s.received.fetch_add(3, Ordering::Relaxed);
        s.record_completed("ldrg", Duration::from_micros(100), OracleStats::default());
        let j = s.to_json(2, 1);
        assert_eq!(j.get("received").and_then(Json::as_f64), Some(3.0));
        assert_eq!(j.get("completed").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("queue_depth").and_then(Json::as_f64), Some(2.0));
        let per = j.get("per_algorithm").unwrap();
        assert_eq!(per.get("ldrg").and_then(Json::as_f64), Some(1.0));
        assert!(j.get("latency").unwrap().get("p50_us").is_some());
    }
}
