//! The service: a bounded queue feeding a fixed worker pool, fronted by
//! the result cache.
//!
//! Life of a route request:
//!
//! 1. **Submit** (transport thread): build the net, compute the cache
//!    key, answer straight from the cache on a hit. On a miss,
//!    `try_push` the job — a full queue answers `overloaded`
//!    immediately (backpressure) rather than queueing unboundedly.
//! 2. **Dequeue** (worker thread): a job whose deadline already passed
//!    while queued answers `deadline` without touching a core.
//! 3. **Execute**: the worker routes with a [`CancelToken`] carrying
//!    the deadline; the greedy searches check it once per candidate
//!    score, so an expiring request stops within one oracle call.
//! 4. **Respond**: the job's callback delivers the JSON response on
//!    whatever transport the request arrived on. Successful results
//!    enter the cache.
//!
//! Shutdown closes the queue: submitters get `overloaded`, workers
//! drain the backlog, [`Service::shutdown`] joins them — no in-flight
//! request is dropped.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ntr_circuit::Technology;
use ntr_core::{
    canonical_net_hash, Budget, CancelToken, DegradePolicy, FaultPlan, Fidelity, FidelityCosts,
    RetryPolicy, RoutingOutcome, RoutingSession,
};
use ntr_obs::journal::{self, WideEvent};
use ntr_obs::slo::{BurnRule, SloEngine, SloSpec};
use ntr_obs::tsdb::Tsdb;
use ntr_obs::{log_debug, log_warn, span, Journal};

use crate::cache::LruCache;
use crate::engine::{self, EngineError, Resilience};
use crate::json::Json;
use crate::pool::{BoundedQueue, PushError};
use crate::proto::{error_response, ErrorCode, RouteRequest, SessionAction, SessionRequest};
use crate::sessions::SessionTable;
use crate::stats::ServiceStats;

/// Delivers one response back to the requester's transport.
pub type Respond = Box<dyn FnOnce(Json) + Send>;

/// Tuning knobs for [`Service::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Pending jobs admitted before `overloaded` (≥1).
    pub queue_depth: usize,
    /// Result-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Interconnect technology used for every request.
    pub tech: Technology,
    /// Fault-injection plan installed at startup (the `NTR_FAULTS` env
    /// var); swappable at runtime via [`Service::set_fault_plan`].
    pub faults: Option<Arc<FaultPlan>>,
    /// Objectives the burn-rate alert engine evaluates (the `--slo`
    /// flag / `NTR_SLOS` env var; defaults to
    /// [`ntr_obs::slo::default_slos`]).
    pub slos: Vec<SloSpec>,
    /// Cadence of the observability ticker (TSDB registry snapshot +
    /// SLO evaluation + session TTL eviction). The 1 s default matches
    /// the TSDB's raw resolution.
    pub obs_tick: Duration,
    /// Live rerouting sessions admitted before `session.create` answers
    /// the structured `session` error (≥1).
    pub session_capacity: usize,
    /// Idle time after which a session is evicted (its cancel token
    /// trips, so an in-flight reroute for it stops mid-search).
    pub session_ttl: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_depth: 64,
            cache_capacity: 1024,
            tech: Technology::date94(),
            faults: None,
            slos: ntr_obs::slo::default_slos(),
            obs_tick: Duration::from_secs(1),
            session_capacity: 64,
            session_ttl: Duration::from_secs(300),
        }
    }
}

struct Job {
    request: RouteRequest,
    key: Option<u64>,
    /// Set when this job is the in-flight primary for its cache key:
    /// concurrent duplicates coalesce onto it instead of routing twice.
    coalesce_key: Option<u64>,
    respond: Respond,
    enqueued: Instant,
    deadline_at: Option<Instant>,
    /// Request trace id, assigned at submission and echoed in the
    /// response; spans and log lines emitted while the worker routes
    /// this job carry it.
    trace: u64,
}

/// A queued `session.*` op. Session ops share the route queue — one
/// backpressure bound, one journal-before-respond chokepoint — and
/// ops on the same session serialize on the entry's lock, so a mutate
/// and a reroute racing through different workers stay ordered.
struct SessionJob {
    request: SessionRequest,
    respond: Respond,
    enqueued: Instant,
    trace: u64,
}

/// Everything the bounded queue carries.
enum Work {
    Route(Job),
    Session(SessionJob),
}

/// A coalesced duplicate waiting on the primary: its own `id`, trace
/// id, and arrival time, plus the callback to deliver the shared
/// result to.
type Waiter = (Option<Json>, u64, Instant, Respond);
type Inflight = Mutex<HashMap<u64, Vec<Waiter>>>;

/// Saturating microseconds for journal timings.
fn micros(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// The wide-event skeleton every path of a request's life fills in.
fn base_event(request: &RouteRequest, trace: u64) -> WideEvent {
    WideEvent {
        trace,
        pins: request.pins.len() as u64,
        algorithm: request.algorithm.as_str(),
        fidelity_requested: request.oracle.fidelity().as_str(),
        ..WideEvent::default()
    }
}

/// Publishes one wide event to the flight recorder, offers its span
/// trace for tail retention (flagged events keep it even span-less),
/// and feeds the outcome to the SLO engine — this is the one
/// chokepoint every answered request passes through, so the error
/// budget sees exactly the journaled reality.
fn journal_event(mut event: WideEvent, spans: Vec<ntr_obs::SpanRecord>, slo: &SloEngine) {
    slo.record(event.outcome == "ok", event.total_us);
    let recorder = Journal::global();
    event.seq = recorder.record_request(event.clone());
    recorder.offer_exemplar(event, spans);
}

/// The running routing service. Cheap to share: transports hold it in
/// an [`Arc`] and call [`submit`](Self::submit) from any thread.
pub struct Service {
    tech: Technology,
    queue: Arc<BoundedQueue<Work>>,
    cache: Arc<Mutex<LruCache<Json>>>,
    sessions: Arc<SessionTable>,
    inflight: Arc<Inflight>,
    stats: Arc<ServiceStats>,
    resilience: Arc<Resilience>,
    tsdb: Arc<Tsdb>,
    slo: Arc<SloEngine>,
    /// `true` once shutdown has asked the observability ticker to stop;
    /// the Condvar wakes it from its tick sleep immediately.
    obs_stop: Arc<(Mutex<bool>, Condvar)>,
    obs_ticker: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Spawns the worker pool and returns the handle.
    #[must_use]
    pub fn start(config: &ServiceConfig) -> Self {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };
        let queue = Arc::new(BoundedQueue::new(config.queue_depth));
        let cache = Arc::new(Mutex::new(LruCache::new(config.cache_capacity)));
        let sessions = Arc::new(SessionTable::new(
            config.session_capacity,
            config.session_ttl,
        ));
        let inflight: Arc<Inflight> = Arc::new(Mutex::new(HashMap::new()));
        let stats = Arc::new(ServiceStats::default());
        let resilience = Arc::new(Resilience::with_faults(config.faults.clone()));
        let tsdb = Arc::new(Tsdb::default());
        let slo = Arc::new(SloEngine::new(config.slos.clone(), BurnRule::default()));
        slo.register_metrics(stats.registry());
        let handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&cache);
                let sessions = Arc::clone(&sessions);
                let inflight = Arc::clone(&inflight);
                let stats = Arc::clone(&stats);
                let resilience = Arc::clone(&resilience);
                let slo = Arc::clone(&slo);
                let tech = config.tech;
                std::thread::Builder::new()
                    .name(format!("ntr-worker-{i}"))
                    .spawn(move || {
                        worker_loop(
                            &queue,
                            &cache,
                            &sessions,
                            &inflight,
                            &stats,
                            &resilience,
                            &slo,
                            tech,
                        );
                    })
                    .expect("spawning a worker thread failed")
            })
            .collect();
        let obs_stop = Arc::new((Mutex::new(false), Condvar::new()));
        let obs_ticker = {
            let stop = Arc::clone(&obs_stop);
            let tsdb = Arc::clone(&tsdb);
            let slo = Arc::clone(&slo);
            let stats = Arc::clone(&stats);
            let queue = Arc::clone(&queue);
            let cache = Arc::clone(&cache);
            let sessions = Arc::clone(&sessions);
            let resilience = Arc::clone(&resilience);
            let tick = config.obs_tick.max(Duration::from_millis(10));
            std::thread::Builder::new()
                .name("ntr-obs-tick".to_owned())
                .spawn(move || {
                    let (stopped, wake) = &*stop;
                    let mut guard = stopped.lock().expect("obs stop mutex poisoned");
                    while !*guard {
                        // Idle sessions are reclaimed on the same beat
                        // the gauges refresh, so `ntr_sessions_active`
                        // never reports an already-dead session.
                        stats.sessions_evicted.add(sessions.evict_expired());
                        // Gauges refresh before the snapshot so the
                        // TSDB stores live values, not scrape-stale
                        // ones; alerts evaluate on the same beat.
                        let cache_entries = cache.lock().expect("cache mutex poisoned").len();
                        stats.refresh_gauges(
                            queue.len(),
                            cache_entries,
                            resilience.faults_injected(),
                            sessions.len(),
                        );
                        slo.evaluate();
                        tsdb.snapshot_now(stats.registry());
                        guard = wake
                            .wait_timeout(guard, tick)
                            .expect("obs stop mutex poisoned")
                            .0;
                    }
                })
                .expect("spawning the observability ticker failed")
        };
        Self {
            tech: config.tech,
            queue,
            cache,
            sessions,
            inflight,
            stats,
            resilience,
            tsdb,
            slo,
            obs_stop,
            obs_ticker: Mutex::new(Some(obs_ticker)),
            workers: Mutex::new(handles),
        }
    }

    /// Submits one route request; `respond` is called exactly once,
    /// possibly on another thread, possibly before this returns (cache
    /// hits and rejections answer inline).
    pub fn submit(&self, request: RouteRequest, respond: Respond) {
        self.stats.received.inc();
        let arrived = Instant::now();
        let trace = span::next_trace_id();
        let id = request.id.clone();
        let net = match engine::build_net(&request) {
            Ok(net) => net,
            Err(EngineError::Route(detail)) => {
                self.stats.errors.inc();
                let mut event = base_event(&request, trace);
                event.outcome = "route_error";
                event.total_us = micros(arrived.elapsed());
                journal_event(event, Vec::new(), &self.slo);
                respond(with_trace(
                    error_response(id.as_ref(), ErrorCode::Route, &detail),
                    trace,
                ));
                return;
            }
            Err(EngineError::Cancelled) => unreachable!("net construction cannot be cancelled"),
        };
        let key = request
            .use_cache
            .then(|| engine::cache_key(&net, &request, &self.tech));
        if let Some(key) = key {
            let mut cache = self.cache.lock().expect("cache mutex poisoned");
            if let Some(hit) = cache.get(key) {
                let mut response = hit.clone();
                response.set("id", id.clone().unwrap_or(Json::Null));
                response.set("cached", Json::Bool(true));
                response.set("trace", Json::Num(trace as f64));
                drop(cache);
                self.stats.cache_hits.inc();
                self.stats.completed.inc();
                // Cached bodies are never degraded, so served == asked.
                let mut event = base_event(&request, trace);
                event.net_hash = ntr_core::canonical_net_hash(&net, &self.tech);
                event.fidelity_served = event.fidelity_requested;
                event.cache_hit = true;
                event.total_us = micros(arrived.elapsed());
                journal_event(event, Vec::new(), &self.slo);
                respond(response);
                return;
            }
            drop(cache);
            self.stats.cache_misses.inc();
        }
        // Coalesce concurrent duplicates: while an identical request is
        // in flight, later copies wait for its result instead of routing
        // the same net again. Requests with deadlines opt out — a waiter
        // must not inherit someone else's (possibly tighter) budget.
        let coalesce_key = match key.filter(|_| request.deadline.is_none()) {
            Some(key) => {
                let mut inflight = self.inflight.lock().expect("inflight mutex poisoned");
                if let Some(waiters) = inflight.get_mut(&key) {
                    waiters.push((id, trace, arrived, respond));
                    self.stats.coalesced.inc();
                    return;
                }
                inflight.insert(key, Vec::new());
                Some(key)
            }
            None => None,
        };
        let enqueued = arrived;
        let job = Job {
            deadline_at: request.deadline.map(|d| enqueued + d),
            request,
            key,
            coalesce_key,
            respond,
            enqueued,
            trace,
        };
        match self.queue.try_push(Work::Route(job)) {
            Ok(()) => {}
            Err(PushError::Full(Work::Route(job))) => {
                self.reject(job, "work queue full, retry later");
            }
            Err(PushError::Closed(Work::Route(job))) => {
                self.reject(job, "service shutting down");
            }
            Err(_) => unreachable!("push returns the work it was given"),
        }
    }

    /// Submits one `session.*` op; `respond` is called exactly once.
    ///
    /// Session ops go through the same bounded queue as routes (one
    /// backpressure bound for all work) but never touch the result
    /// cache or coalescing — a session's net mutates under it, so its
    /// responses are not content-addressable.
    pub fn submit_session(&self, request: SessionRequest, respond: Respond) {
        self.stats.received.inc();
        let job = SessionJob {
            request,
            respond,
            enqueued: Instant::now(),
            trace: span::next_trace_id(),
        };
        match self.queue.try_push(Work::Session(job)) {
            Ok(()) => {}
            Err(PushError::Full(Work::Session(job))) => {
                self.reject_session(job, "work queue full, retry later");
            }
            Err(PushError::Closed(Work::Session(job))) => {
                self.reject_session(job, "service shutting down");
            }
            Err(_) => unreachable!("push returns the work it was given"),
        }
    }

    /// Answers `overloaded` to a rejected session op.
    fn reject_session(&self, job: SessionJob, detail: &str) {
        self.stats.overloaded.inc();
        log_warn!("rejecting session op: {detail}");
        let mut event = base_session_event(&job.request, job.trace);
        event.outcome = "overloaded";
        event.total_us = micros(job.enqueued.elapsed());
        journal_event(event, Vec::new(), &self.slo);
        (job.respond)(with_trace(
            error_response(job.request.id.as_ref(), ErrorCode::Overloaded, detail),
            job.trace,
        ));
    }

    /// Answers `overloaded` to a rejected job and any duplicates that
    /// coalesced onto it between registration and rejection.
    fn reject(&self, job: Job, detail: &str) {
        let waiters = take_waiters(&self.inflight, job.coalesce_key);
        self.stats.overloaded.add(1 + waiters.len() as u64);
        log_warn!("rejecting request: {detail}");
        let mut event = base_event(&job.request, job.trace);
        event.outcome = "overloaded";
        event.total_us = micros(job.enqueued.elapsed());
        journal_event(event, Vec::new(), &self.slo);
        (job.respond)(with_trace(
            error_response(job.request.id.as_ref(), ErrorCode::Overloaded, detail),
            job.trace,
        ));
        for (wid, wtrace, warrived, wrespond) in waiters {
            let mut event = base_event(&job.request, wtrace);
            event.outcome = "overloaded";
            event.coalesced = true;
            event.total_us = micros(warrived.elapsed());
            journal_event(event, Vec::new(), &self.slo);
            wrespond(with_trace(
                error_response(wid.as_ref(), ErrorCode::Overloaded, detail),
                wtrace,
            ));
        }
    }

    /// The stats-response body for `{"op":"stats"}`.
    #[must_use]
    pub fn stats_json(&self) -> Json {
        let cache_entries = self.cache.lock().expect("cache mutex poisoned").len();
        self.stats.to_json(
            self.queue.len(),
            cache_entries,
            self.resilience.faults_injected(),
            self.sessions.len(),
        )
    }

    /// Prometheus text exposition of the service's metrics, for
    /// `{"op":"metrics"}` and `GET /metrics`.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        let cache_entries = self.cache.lock().expect("cache mutex poisoned").len();
        self.stats.prometheus(
            self.queue.len(),
            cache_entries,
            self.resilience.faults_injected(),
            self.sessions.len(),
        )
    }

    /// The shared counters (for tests and the load generator).
    #[must_use]
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The embedded time-series store the ticker snapshots into.
    #[must_use]
    pub fn tsdb(&self) -> &Tsdb {
        &self.tsdb
    }

    /// The SLO burn-rate engine fed by every answered request.
    #[must_use]
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// The TSDB answer for `{"op":"query"}` and `GET /tsdb`.
    #[must_use]
    pub fn query_json(&self, metric: Option<&str>, res_secs: u64) -> Json {
        self.tsdb.query_json(metric, res_secs)
    }

    /// The alerts answer for `{"op":"alerts"}` and `GET /alertz`.
    #[must_use]
    pub fn alerts_json(&self) -> Json {
        self.slo.alerts_json()
    }

    /// Live per-fidelity EWMA cost estimates (the `/statusz` view of the
    /// degradation gate's inputs).
    #[must_use]
    pub fn fidelity_costs(&self) -> FidelityCosts {
        self.resilience.costs()
    }

    /// Jobs currently waiting in the bounded queue.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Entries currently held by the result cache.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache mutex poisoned").len()
    }

    /// Live rerouting sessions (the `ntr_sessions_active` gauge).
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Installs (or clears, with `None`) the fault-injection plan for
    /// subsequent requests. In-flight requests keep the plan they
    /// started with.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        self.resilience.set_faults(plan);
    }

    /// The currently installed fault plan.
    #[must_use]
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.resilience.faults()
    }

    /// Total faults injected across every plan this service has run.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.resilience.faults_injected()
    }

    /// Graceful shutdown: reject new work, drain the backlog, join the
    /// workers and the observability ticker. Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        let handles: Vec<_> = {
            let mut workers = self.workers.lock().expect("worker mutex poisoned");
            workers.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        let (stopped, wake) = &*self.obs_stop;
        *stopped.lock().expect("obs stop mutex poisoned") = true;
        wake.notify_all();
        if let Some(ticker) = self
            .obs_ticker
            .lock()
            .expect("obs ticker mutex poisoned")
            .take()
        {
            let _ = ticker.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn take_waiters(inflight: &Inflight, key: Option<u64>) -> Vec<Waiter> {
    key.and_then(|key| {
        inflight
            .lock()
            .expect("inflight mutex poisoned")
            .remove(&key)
    })
    .unwrap_or_default()
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    queue: &BoundedQueue<Work>,
    cache: &Mutex<LruCache<Json>>,
    sessions: &SessionTable,
    inflight: &Inflight,
    stats: &ServiceStats,
    resilience: &Resilience,
    slo: &SloEngine,
    tech: Technology,
) {
    while let Some(work) = queue.pop() {
        stats.inflight_requests.inc();
        // Everything this worker does for the job — spans and log lines
        // included — carries the trace id assigned at submission.
        let trace = match &work {
            Work::Route(job) => job.trace,
            Work::Session(job) => job.trace,
        };
        let _trace_guard = span::with_trace_id(trace);
        // Tail sampling has to record up front: the capture buffers
        // every span the job emits, and the journal decides afterwards
        // whether the trace was worth keeping (slow / error / degraded).
        let capture = span::capture();
        let (event, respond, response) = match work {
            Work::Route(job) => run_job(job, cache, inflight, stats, resilience, slo, tech),
            Work::Session(job) => run_session(job, sessions, stats, tech),
        };
        // Journal before responding: a client that has seen the answer
        // can always find the request in `{"op":"journal"}` — no window
        // where the response exists but its wide event does not.
        journal_event(event, capture.finish(), slo);
        // The gauge drops before the answer leaves: a client holding
        // the response never observes itself still counted in flight.
        stats.inflight_requests.dec();
        respond(response);
    }
}

/// Routes one dequeued job and delivers any coalesced waiters'
/// responses. The primary's own response is NOT delivered here: it is
/// returned with the wide event and the `respond` callback so the
/// caller can journal the event (with the captured spans) first and
/// only then answer the client.
fn run_job(
    job: Job,
    cache: &Mutex<LruCache<Json>>,
    inflight: &Inflight,
    stats: &ServiceStats,
    resilience: &Resilience,
    slo: &SloEngine,
    tech: Technology,
) -> (WideEvent, Respond, Json) {
    let _request_span = span::span("server.request");
    let id = job.request.id.clone();
    let mut event = base_event(&job.request, job.trace);
    event.queue_us = micros(job.enqueued.elapsed());
    // A request that spent its whole deadline queued answers without
    // occupying the worker for a full route — unless degradation is
    // on, in which case the engine collapses to the O(k) tree floor
    // and still serves. (Deadline jobs never register as coalescing
    // primaries, so no waiters to serve.)
    if job.deadline_at.is_some_and(|at| Instant::now() >= at) && !job.request.degrade {
        stats.deadline_expired.inc();
        log_debug!("deadline expired while queued");
        event.outcome = "deadline";
        event.total_us = micros(job.enqueued.elapsed());
        let response = with_trace(
            error_response(
                id.as_ref(),
                ErrorCode::Deadline,
                "deadline expired while queued",
            ),
            job.trace,
        );
        return (event, job.respond, response);
    }
    // Injected worker stall: the job holds this worker before
    // routing starts, shrinking the deadline budget it routes with.
    if let Some(pause) = resilience.faults().and_then(|p| p.worker_stall()) {
        let _stall_span = span::span("fault.stall");
        std::thread::sleep(pause);
    }
    let cancel = job
        .deadline_at
        .map_or_else(CancelToken::new, CancelToken::with_deadline);
    let net = match engine::build_net(&job.request) {
        Ok(net) => net,
        Err(_) => unreachable!("submit validated the net"),
    };
    let faults_before = resilience.faults_injected();
    let route_started = Instant::now();
    let result = engine::execute(&job.request, &net, tech, &cancel, resilience);
    event.route_us = micros(route_started.elapsed());
    event.rungs = journal::take_rungs();
    event.injected_faults = resilience.faults_injected().saturating_sub(faults_before);
    let response = match result {
        Ok(outcome) => {
            let latency = job.enqueued.elapsed();
            event.fidelity_served = outcome.fidelity_served;
            event.degradation_steps = outcome.degradation_steps;
            event.retries = outcome.retries;
            event.net_hash = outcome.net_hash;
            event.candidates_generated = outcome.search.candidates_generated;
            event.candidates_scored = outcome.search.candidates_scored;
            event.candidates_pruned = outcome.search.candidates_pruned;
            event.ldrg_iterations = outcome.ldrg_iterations;
            event.total_us = micros(latency);
            // Degraded bodies are a product of this request's
            // deadline pressure, not of the net: never cached, so a
            // later unhurried request gets full fidelity.
            if let Some(key) = job.key.filter(|_| !outcome.degraded) {
                cache
                    .lock()
                    .expect("cache mutex poisoned")
                    .insert(key, outcome.body.clone());
            }
            // Waiters are taken only after the cache insert, so a
            // duplicate arriving right now either finds the cache
            // entry or is already in this list — never neither.
            let waiters = take_waiters(inflight, job.coalesce_key);
            stats.record_completed(
                job.request.algorithm.as_str(),
                latency,
                outcome.search,
                outcome.degraded,
                outcome.retries,
            );
            stats.completed.add(waiters.len() as u64);
            log_debug!(
                "routed {} pins with {} in {} us",
                job.request.pins.len(),
                job.request.algorithm.as_str(),
                latency.as_micros()
            );
            for (wid, wtrace, warrived, wrespond) in waiters {
                // Waiters share the primary's result — including its
                // degradation — so each gets its own wide event with
                // the shared outcome under its own trace and timing.
                let mut waited = event.clone();
                waited.trace = wtrace;
                waited.coalesced = true;
                waited.queue_us = 0;
                waited.rungs = Vec::new();
                waited.total_us = micros(warrived.elapsed());
                journal_event(waited, Vec::new(), slo);
                let mut shared = outcome.body.clone();
                shared.set("id", wid.unwrap_or(Json::Null));
                shared.set("cached", Json::Bool(true));
                shared.set("trace", Json::Num(wtrace as f64));
                wrespond(shared);
            }
            let mut response = outcome.body;
            response.set("id", id.unwrap_or(Json::Null));
            response.set("cached", Json::Bool(false));
            response.set("micros", Json::Num(latency.as_micros() as f64));
            response.set("trace", Json::Num(job.trace as f64));
            response
        }
        Err(EngineError::Cancelled) => {
            stats.deadline_expired.inc();
            log_debug!("deadline expired during routing");
            event.outcome = "deadline";
            event.total_us = micros(job.enqueued.elapsed());
            with_trace(
                error_response(
                    id.as_ref(),
                    ErrorCode::Deadline,
                    "deadline expired during routing",
                ),
                job.trace,
            )
        }
        Err(EngineError::Route(detail)) => {
            let waiters = take_waiters(inflight, job.coalesce_key);
            stats.errors.add(1 + waiters.len() as u64);
            log_warn!("route failed: {detail}");
            event.outcome = "route_error";
            event.total_us = micros(job.enqueued.elapsed());
            for (wid, wtrace, warrived, wrespond) in waiters {
                let mut waited = event.clone();
                waited.trace = wtrace;
                waited.coalesced = true;
                waited.queue_us = 0;
                waited.rungs = Vec::new();
                waited.total_us = micros(warrived.elapsed());
                journal_event(waited, Vec::new(), slo);
                wrespond(with_trace(
                    error_response(wid.as_ref(), ErrorCode::Route, &detail),
                    wtrace,
                ));
            }
            with_trace(
                error_response(id.as_ref(), ErrorCode::Route, &detail),
                job.trace,
            )
        }
    };
    (event, job.respond, response)
}

/// The wide-event skeleton for a `session.*` op. The op name rides in
/// the `algorithm` column — one journal schema for all request kinds —
/// and sessions always serve at moment fidelity.
fn base_session_event(request: &SessionRequest, trace: u64) -> WideEvent {
    let pins = match &request.action {
        SessionAction::Create(req) => req.pins.len() as u64,
        _ => 0,
    };
    WideEvent {
        trace,
        pins,
        algorithm: session_op_name(&request.action),
        fidelity_requested: Fidelity::Moment.as_str(),
        ..WideEvent::default()
    }
}

fn session_op_name(action: &SessionAction) -> &'static str {
    match action {
        SessionAction::Create(_) => "session.create",
        SessionAction::Mutate { .. } => "session.mutate",
        SessionAction::Reroute { .. } => "session.reroute",
        SessionAction::Close { .. } => "session.close",
    }
}

/// Answers one dequeued `session.*` op. Same contract as [`run_job`]:
/// the response is returned, not delivered, so the caller journals the
/// wide event first.
fn run_session(
    job: SessionJob,
    sessions: &SessionTable,
    stats: &ServiceStats,
    tech: Technology,
) -> (WideEvent, Respond, Json) {
    let _session_span = span::span("server.session");
    let id = job.request.id.clone();
    let mut event = base_session_event(&job.request, job.trace);
    event.queue_us = micros(job.enqueued.elapsed());
    let response = match job.request.action {
        SessionAction::Create(request) => {
            session_create(&request, id.as_ref(), sessions, stats, tech, &mut event)
        }
        SessionAction::Mutate { session, ops } => {
            session_mutate(session, ops, id.as_ref(), sessions, stats, &mut event)
        }
        SessionAction::Reroute { session, deadline } => session_reroute(
            session,
            deadline,
            job.enqueued,
            id.as_ref(),
            sessions,
            stats,
            &mut event,
        ),
        SessionAction::Close { session } => {
            session_close(session, id.as_ref(), sessions, stats, &mut event)
        }
    };
    event.total_us = micros(job.enqueued.elapsed());
    (event, job.respond, with_trace(response, job.trace))
}

/// Counts and journals one structured `session` error.
fn session_error(
    stats: &ServiceStats,
    event: &mut WideEvent,
    id: Option<&Json>,
    detail: &str,
) -> Json {
    stats.errors.inc();
    stats.session_errors.inc();
    event.outcome = "session_error";
    log_warn!("session op failed: {detail}");
    error_response(id, ErrorCode::Session, detail)
}

/// The budget every reroute of a session runs under. Sessions pin
/// moment fidelity with degradation and fault injection off: the
/// rank-1/refactor reuse is a moment-engine property, and incremental
/// answers must stay equivalent to their from-scratch counterparts.
fn session_budget(request: &RouteRequest, tech: Technology, net_hash: u64) -> Budget {
    Budget {
        tech,
        fidelity: Fidelity::Moment,
        max_added_edges: request.max_added_edges,
        parallelism: 1,
        candidates: request.candidates,
        cancel: CancelToken::default(),
        retry: RetryPolicy {
            max_retries: request.retries,
            // Deterministic per net: replayed sessions jitter identically.
            seed: net_hash,
            ..RetryPolicy::default()
        },
        degrade: DegradePolicy {
            enabled: false,
            ..DegradePolicy::default()
        },
        faults: None,
    }
}

/// The route-body fields shared by `session.create` and
/// `session.reroute` responses (the same shape `route` answers with).
fn outcome_body(outcome: &RoutingOutcome, algorithm: ntr_core::Algorithm, pins: usize) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("algorithm", Json::str(algorithm.as_str())),
        ("fidelity", Json::str(outcome.fidelity.as_str())),
        (
            "requested_fidelity",
            Json::str(outcome.requested_fidelity.as_str()),
        ),
        ("degraded", Json::Bool(outcome.degraded())),
        (
            "degradation_steps",
            Json::Num(outcome.degradation_steps() as f64),
        ),
        ("retries", Json::Num(f64::from(outcome.retries))),
        ("pins", Json::Num(pins as f64)),
        ("delay_ns", Json::Num(outcome.final_delay * 1e9)),
        ("initial_delay_ns", Json::Num(outcome.initial_delay * 1e9)),
        ("cost_um", Json::Num(outcome.final_cost)),
        ("edges", Json::Num(outcome.graph.edge_count() as f64)),
        ("added_edges", Json::Num(outcome.added_edges as f64)),
        ("tree", Json::Bool(outcome.graph.is_tree())),
        ("search", Json::str(outcome.stats.to_string())),
    ])
}

/// Copies a routed outcome's observability columns into the wide event.
fn fill_route_event(event: &mut WideEvent, outcome: &RoutingOutcome) {
    event.fidelity_served = outcome.fidelity.as_str();
    event.degradation_steps = outcome.degradation_steps() as u32;
    event.retries = outcome.retries;
    event.candidates_generated = outcome.stats.candidates_generated;
    event.candidates_scored = outcome.stats.candidates_scored;
    event.candidates_pruned = outcome.stats.candidates_pruned;
    event.ldrg_iterations = outcome.iterations.len() as u32;
}

fn session_create(
    request: &RouteRequest,
    id: Option<&Json>,
    sessions: &SessionTable,
    stats: &ServiceStats,
    tech: Technology,
    event: &mut WideEvent,
) -> Json {
    let net = match engine::build_net(request) {
        Ok(net) => net,
        Err(EngineError::Route(detail)) => {
            stats.errors.inc();
            event.outcome = "route_error";
            return error_response(id, ErrorCode::Route, &detail);
        }
        Err(EngineError::Cancelled) => unreachable!("net construction cannot be cancelled"),
    };
    let net_hash = canonical_net_hash(&net, &tech);
    event.net_hash = net_hash;
    let cancel = CancelToken::new();
    let mut budget = session_budget(request, tech, net_hash);
    budget.cancel = cancel.clone();
    let started = Instant::now();
    let created = RoutingSession::create(&net, request.algorithm, budget);
    event.route_us = micros(started.elapsed());
    event.rungs = journal::take_rungs();
    let (session, outcome) = match created {
        Ok(pair) => pair,
        Err(e) => {
            stats.errors.inc();
            event.outcome = "route_error";
            log_warn!("session create failed to route: {e}");
            return error_response(id, ErrorCode::Route, &e.to_string());
        }
    };
    let pins = session.pins().len();
    let entry = match sessions.insert(session, cancel) {
        Ok(entry) => entry,
        Err(full) => {
            return session_error(
                stats,
                event,
                id,
                &format!("session table full ({} live sessions)", full.capacity),
            );
        }
    };
    stats.sessions_created.inc();
    stats.completed.inc();
    fill_route_event(event, &outcome);
    let mut body = outcome_body(&outcome, request.algorithm, pins);
    body.set("session", Json::Num(entry.id as f64));
    body.set("id", id.cloned().unwrap_or(Json::Null));
    body
}

fn session_mutate(
    handle: u64,
    ops: Vec<ntr_core::DeltaOp>,
    id: Option<&Json>,
    sessions: &SessionTable,
    stats: &ServiceStats,
    event: &mut WideEvent,
) -> Json {
    let Some(entry) = sessions.get(handle) else {
        return session_error(
            stats,
            event,
            id,
            &format!("unknown or expired session {handle}"),
        );
    };
    let mut session = entry.session.lock().expect("session mutex poisoned");
    let total = ops.len();
    let mut applied = 0usize;
    let mut rejection = None;
    for op in ops {
        match session.mutate(op) {
            Ok(()) => applied += 1,
            Err(e) => {
                rejection = Some(e);
                break;
            }
        }
    }
    stats.session_mutations.add(applied as u64);
    event.pins = session.pins().len() as u64;
    let pending = session.pending_len();
    drop(session);
    if let Some(e) = rejection {
        // Earlier deltas in the batch stay applied — the client sees
        // exactly how far the batch got.
        let mut response = session_error(
            stats,
            event,
            id,
            &format!("delta {} of {total} rejected: {e}", applied + 1),
        );
        response.set("session", Json::Num(handle as f64));
        response.set("applied", Json::Num(applied as f64));
        response.set("pending", Json::Num(pending as f64));
        return response;
    }
    stats.completed.inc();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("session", Json::Num(handle as f64)),
        ("applied", Json::Num(applied as f64)),
        ("pending", Json::Num(pending as f64)),
        ("id", id.cloned().unwrap_or(Json::Null)),
    ])
}

#[allow(clippy::too_many_arguments)]
fn session_reroute(
    handle: u64,
    deadline: Option<Duration>,
    enqueued: Instant,
    id: Option<&Json>,
    sessions: &SessionTable,
    stats: &ServiceStats,
    event: &mut WideEvent,
) -> Json {
    let Some(entry) = sessions.get(handle) else {
        return session_error(
            stats,
            event,
            id,
            &format!("unknown or expired session {handle}"),
        );
    };
    let mut session = entry.session.lock().expect("session mutex poisoned");
    event.pins = session.pins().len() as u64;
    // A per-request deadline shares the session's cancel flag, so close
    // and TTL eviction still stop a deadline-bearing reroute mid-search.
    let cancel = deadline.map_or_else(
        || entry.cancel.clone(),
        |d| entry.cancel.with_deadline_from(enqueued + d),
    );
    session.set_cancel(cancel);
    let started = Instant::now();
    let result = session.reroute();
    event.route_us = micros(started.elapsed());
    event.rungs = journal::take_rungs();
    match result {
        Ok(report) => {
            stats.record_session_reroute(report.path);
            stats.completed.inc();
            fill_route_event(event, &report.outcome);
            let mut body = outcome_body(&report.outcome, session.algorithm(), session.pins().len());
            drop(session);
            body.set("session", Json::Num(handle as f64));
            body.set("path", Json::str(report.path.as_str()));
            body.set("id", id.cloned().unwrap_or(Json::Null));
            body
        }
        Err(e) if e.is_cancelled() => {
            drop(session);
            stats.deadline_expired.inc();
            log_debug!("session reroute cancelled");
            event.outcome = "deadline";
            error_response(
                id,
                ErrorCode::Deadline,
                "session reroute cancelled (deadline expired or session closed)",
            )
        }
        Err(e) => {
            drop(session);
            stats.errors.inc();
            log_warn!("session reroute failed: {e}");
            event.outcome = "route_error";
            error_response(id, ErrorCode::Route, &e.to_string())
        }
    }
}

fn session_close(
    handle: u64,
    id: Option<&Json>,
    sessions: &SessionTable,
    stats: &ServiceStats,
    event: &mut WideEvent,
) -> Json {
    let Some(entry) = sessions.remove(handle) else {
        return session_error(
            stats,
            event,
            id,
            &format!("unknown or expired session {handle}"),
        );
    };
    // Trip the session-wide token first: an in-flight reroute for this
    // session aborts at its next cancellation check, releasing the lock.
    entry.cancel.cancel();
    stats.sessions_closed.inc();
    stats.completed.inc();
    let session = entry.session.lock().expect("session mutex poisoned");
    event.pins = session.pins().len() as u64;
    let s = session.stats();
    drop(session);
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("session", Json::Num(handle as f64)),
        ("mutations", Json::Num(s.mutations as f64)),
        ("reroutes", Json::Num(s.reroutes as f64)),
        ("quiescent", Json::Num(s.quiescent as f64)),
        ("rank1", Json::Num(s.rank1 as f64)),
        ("refactor", Json::Num(s.refactor as f64)),
        ("scratch", Json::Num(s.scratch as f64)),
        ("id", id.cloned().unwrap_or(Json::Null)),
    ])
}

/// Stamps the request's trace id onto a response object.
fn with_trace(mut response: Json, trace: u64) -> Json {
    response.set("trace", Json::Num(trace as f64));
    response
}
