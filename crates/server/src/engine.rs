//! Executes one route request: net construction, the unified
//! [`route_one`] dispatch, and the content-addressed cache key.
//!
//! Workers run this with `parallelism: 1` — the pool already keeps
//! every core busy with one net per worker, and nested sweep threads
//! would just fight the pool for cores.
//!
//! The per-service [`Resilience`] state feeds [`route_one`]'s
//! degradation gate: a live per-fidelity cost model (EWMA over observed
//! full-fidelity route times, seeded from bench medians) and the
//! currently installed fault-injection plan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ntr_circuit::Technology;
use ntr_core::{
    canonical_net_hash, route_one, Budget, CancelToken, CandidateGen, DegradePolicy, FaultPlan,
    Fidelity, FidelityCosts, Fnv64, OracleStats, RetryPolicy, RouteError,
};
use ntr_geom::Net;

use crate::json::Json;
use crate::proto::RouteRequest;

/// Why routing did not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The cancel token tripped (deadline expiry) mid-search.
    Cancelled,
    /// Anything else: bad net, extraction or simulation failure.
    Route(String),
}

impl From<RouteError> for EngineError {
    fn from(e: RouteError) -> Self {
        if e.is_cancelled() {
            EngineError::Cancelled
        } else {
            EngineError::Route(e.to_string())
        }
    }
}

/// EWMA smoothing factor for the live cost model: heavy enough history
/// that one outlier route does not swing the degradation gate.
const COST_EWMA_ALPHA: f64 = 0.2;

/// Per-service resilience state shared by every worker.
#[derive(Debug)]
pub struct Resilience {
    /// Live per-fidelity cost estimates, microseconds. Indexed in
    /// [`Fidelity::ALL`] order.
    cost_micros: [AtomicU64; 4],
    /// The installed fault plan, swappable at runtime via the `faults`
    /// protocol op.
    faults: Mutex<Option<Arc<FaultPlan>>>,
    /// Injected-fault counts accumulated from plans that have since been
    /// replaced, so the exposed total stays monotone across swaps.
    retired_injected: AtomicU64,
}

impl Default for Resilience {
    fn default() -> Self {
        let seed = FidelityCosts::default();
        let micros =
            |f: Fidelity| AtomicU64::new(u64::try_from(seed.estimate(f).as_micros()).unwrap_or(0));
        Self {
            cost_micros: [
                micros(Fidelity::Transient),
                micros(Fidelity::TransientFast),
                micros(Fidelity::Moment),
                micros(Fidelity::Tree),
            ],
            faults: Mutex::new(None),
            retired_injected: AtomicU64::new(0),
        }
    }
}

impl Resilience {
    /// State with a fault plan pre-installed (the `NTR_FAULTS` env var).
    #[must_use]
    pub fn with_faults(plan: Option<Arc<FaultPlan>>) -> Self {
        let r = Self::default();
        *r.faults.lock().expect("faults mutex poisoned") = plan;
        r
    }

    fn slot(fidelity: Fidelity) -> usize {
        Fidelity::ALL
            .iter()
            .position(|&f| f == fidelity)
            .expect("every fidelity is in ALL")
    }

    /// Folds one observed full-fidelity route time into the estimate.
    pub fn observe(&self, fidelity: Fidelity, wall: Duration) {
        let slot = &self.cost_micros[Self::slot(fidelity)];
        let old = slot.load(Ordering::Relaxed) as f64;
        let obs = wall.as_micros() as f64;
        let next = old.mul_add(1.0 - COST_EWMA_ALPHA, obs * COST_EWMA_ALPHA);
        // A lost race just drops one observation; the EWMA re-converges.
        slot.store(next as u64, Ordering::Relaxed);
    }

    /// Snapshot of the live estimates as [`FidelityCosts`].
    #[must_use]
    pub fn costs(&self) -> FidelityCosts {
        let mut costs = FidelityCosts::default();
        for f in Fidelity::ALL {
            let micros = self.cost_micros[Self::slot(f)].load(Ordering::Relaxed);
            costs.set_estimate(f, Duration::from_micros(micros));
        }
        costs
    }

    /// The currently installed fault plan.
    #[must_use]
    pub fn faults(&self) -> Option<Arc<FaultPlan>> {
        self.faults.lock().expect("faults mutex poisoned").clone()
    }

    /// Installs (or clears, with `None`) the fault plan. The replaced
    /// plan's injected count is retired into the monotone total.
    pub fn set_faults(&self, plan: Option<Arc<FaultPlan>>) {
        let mut slot = self.faults.lock().expect("faults mutex poisoned");
        if let Some(old) = slot.take() {
            self.retired_injected
                .fetch_add(old.injected(), Ordering::Relaxed);
        }
        *slot = plan;
    }

    /// Total faults injected across every plan this service has run.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        let live = self.faults().map_or(0, |p| p.injected());
        self.retired_injected.load(Ordering::Relaxed) + live
    }
}

/// Builds the request's net, deduplicating repeated pads.
///
/// # Errors
///
/// Returns a human-readable reason when fewer than two distinct pins
/// remain.
pub fn build_net(req: &RouteRequest) -> Result<Net, EngineError> {
    Net::from_points_deduped(req.pins.clone()).map_err(|e| EngineError::Route(e.to_string()))
}

/// The content-addressed cache key: canonical net hash mixed with every
/// request option that changes the routed result. (`retries` and
/// `degrade` are deliberately excluded — they change *whether* a result
/// is produced under pressure, not which result; degraded outcomes are
/// never cached.)
#[must_use]
pub fn cache_key(net: &Net, req: &RouteRequest, tech: &Technology) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("ntr-route-v1");
    h.write_u64(canonical_net_hash(net, tech));
    h.write_str(req.algorithm.as_str());
    h.write_str(req.oracle.as_str());
    h.write_u64(req.max_added_edges as u64);
    match req.candidates {
        CandidateGen::Exhaustive => h.write_str("exhaustive"),
        CandidateGen::Pruned {
            k_nearest,
            include_tree_neighbors,
        } => {
            h.write_str("pruned");
            h.write_u64(k_nearest as u64);
            h.write_u64(u64::from(include_tree_neighbors));
        }
    }
    h.finish()
}

/// A routed net, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOutcome {
    /// Response body (everything but `id`/`cached`/`micros`, which are
    /// per-delivery).
    pub body: Json,
    /// Search-cost counters of this request alone.
    pub search: OracleStats,
    /// Whether the fidelity ladder was descended below the request.
    pub degraded: bool,
    /// Transient-failure retries spent on this request.
    pub retries: u32,
    /// Rung the request asked for (wire name).
    pub fidelity_requested: &'static str,
    /// Rung the answer was computed at (wire name).
    pub fidelity_served: &'static str,
    /// Rungs descended below the request.
    pub degradation_steps: u32,
    /// Committed search iterations (0 for one-shot heuristics).
    pub ldrg_iterations: u32,
    /// Canonical content hash of the routed net.
    pub net_hash: u64,
}

/// Routes `net` per the request through [`route_one`], checking `cancel`
/// cooperatively and degrading per the request's budget.
///
/// # Errors
///
/// [`EngineError::Cancelled`] when the token trips mid-search and
/// degradation is off or exhausted (the service answers `deadline`),
/// [`EngineError::Route`] otherwise.
pub fn execute(
    req: &RouteRequest,
    net: &Net,
    tech: Technology,
    cancel: &CancelToken,
    resilience: &Resilience,
) -> Result<RouteOutcome, EngineError> {
    // With degradation on, an already-expired deadline is not fatal:
    // route_one collapses to the tree floor and still serves.
    if !req.degrade {
        cancel.check().map_err(|_| EngineError::Cancelled)?;
    }
    let net_hash = canonical_net_hash(net, &tech);
    let budget = Budget {
        tech,
        fidelity: req.oracle.fidelity(),
        max_added_edges: req.max_added_edges,
        parallelism: 1,
        candidates: req.candidates,
        cancel: cancel.clone(),
        retry: RetryPolicy {
            max_retries: req.retries,
            // Deterministic per net: replayed requests jitter identically.
            seed: net_hash,
            ..RetryPolicy::default()
        },
        degrade: DegradePolicy {
            enabled: req.degrade,
            costs: resilience.costs(),
            ..DegradePolicy::default()
        },
        faults: resilience.faults(),
    };
    let started = Instant::now();
    let out = route_one(net, req.algorithm, &budget)?;
    // Clean full-fidelity routes feed the live cost model; degraded or
    // retried runs would under/over-state the rung's real cost.
    if !out.degraded() && out.retries == 0 {
        resilience.observe(out.fidelity, started.elapsed());
    }
    let body = Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("algorithm", Json::str(req.algorithm.as_str())),
        ("oracle", Json::str(req.oracle.as_str())),
        ("fidelity", Json::str(out.fidelity.as_str())),
        (
            "requested_fidelity",
            Json::str(out.requested_fidelity.as_str()),
        ),
        ("degraded", Json::Bool(out.degraded())),
        (
            "degradation_steps",
            Json::Num(out.degradation_steps() as f64),
        ),
        ("retries", Json::Num(f64::from(out.retries))),
        ("pins", Json::Num(net.len() as f64)),
        ("delay_ns", Json::Num(out.final_delay * 1e9)),
        ("initial_delay_ns", Json::Num(out.initial_delay * 1e9)),
        ("cost_um", Json::Num(out.final_cost)),
        ("edges", Json::Num(out.graph.edge_count() as f64)),
        ("added_edges", Json::Num(out.added_edges as f64)),
        ("tree", Json::Bool(out.graph.is_tree())),
        ("search", Json::str(out.stats.to_string())),
    ]);
    Ok(RouteOutcome {
        body,
        search: out.stats,
        degraded: out.degraded(),
        retries: out.retries,
        fidelity_requested: out.requested_fidelity.as_str(),
        fidelity_served: out.fidelity.as_str(),
        degradation_steps: out.degradation_steps() as u32,
        ldrg_iterations: out.iterations.len() as u32,
        net_hash,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Algorithm, OracleKind};
    use ntr_geom::Point;

    fn request(algorithm: Algorithm) -> RouteRequest {
        RouteRequest {
            id: None,
            algorithm,
            oracle: OracleKind::Moment,
            pins: vec![
                Point::new(0.0, 0.0),
                Point::new(3000.0, 0.0),
                Point::new(0.0, 4000.0),
                Point::new(5000.0, 5000.0),
            ],
            deadline: None,
            max_added_edges: 0,
            use_cache: true,
            retries: 2,
            degrade: true,
            candidates: CandidateGen::Exhaustive,
        }
    }

    fn exec(
        req: &RouteRequest,
        cancel: &CancelToken,
        resilience: &Resilience,
    ) -> Result<RouteOutcome, EngineError> {
        let net = build_net(req).unwrap();
        execute(req, &net, Technology::date94(), cancel, resilience)
    }

    #[test]
    fn every_algorithm_routes_the_sample_net() {
        let resilience = Resilience::default();
        for algorithm in [
            Algorithm::Mst,
            Algorithm::Ldrg,
            Algorithm::H1,
            Algorithm::H2,
            Algorithm::H3,
            Algorithm::Ert,
            Algorithm::ErtLdrg,
        ] {
            let req = request(algorithm);
            let out = exec(&req, &CancelToken::new(), &resilience)
                .unwrap_or_else(|e| panic!("{algorithm:?}: {e:?}"));
            assert_eq!(out.body.get("ok"), Some(&Json::Bool(true)));
            assert_eq!(
                out.body.get("fidelity").and_then(Json::as_str),
                Some("moment"),
                "{algorithm:?}"
            );
            assert_eq!(out.body.get("degraded"), Some(&Json::Bool(false)));
            let delay = out.body.get("delay_ns").and_then(Json::as_f64).unwrap();
            let initial = out
                .body
                .get("initial_delay_ns")
                .and_then(Json::as_f64)
                .unwrap();
            assert!(delay.is_finite() && delay > 0.0, "{algorithm:?}: {delay}");
            // The greedy searches only ever commit improvements; H2/H3
            // are one-shot heuristics with no such guarantee.
            if matches!(
                algorithm,
                Algorithm::Ldrg | Algorithm::H1 | Algorithm::ErtLdrg
            ) {
                assert!(delay <= initial + 1e-9, "{algorithm:?} got worse");
            }
        }
    }

    #[test]
    fn expired_deadline_cancels_when_degradation_is_off() {
        let mut req = request(Algorithm::Ldrg);
        req.degrade = false;
        let cancel = CancelToken::deadline_in(Duration::ZERO);
        assert_eq!(
            exec(&req, &cancel, &Resilience::default()),
            Err(EngineError::Cancelled)
        );
    }

    #[test]
    fn expired_deadline_degrades_to_the_tree_floor() {
        let req = request(Algorithm::Ldrg);
        let cancel = CancelToken::deadline_in(Duration::ZERO);
        let out = exec(&req, &cancel, &Resilience::default()).unwrap();
        assert!(out.degraded);
        assert_eq!(
            out.body.get("fidelity").and_then(Json::as_str),
            Some("tree")
        );
        assert_eq!(out.body.get("tree"), Some(&Json::Bool(true)));
        assert_eq!(
            out.body.get("added_edges").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn injected_transient_faults_degrade_transient_requests_to_moment() {
        let mut req = request(Algorithm::Ldrg);
        req.oracle = OracleKind::TransientFast;
        let resilience = Resilience::with_faults(Some(Arc::new(
            FaultPlan::parse("seed=1994;fail=transient:1.0").unwrap(),
        )));
        let out = exec(&req, &CancelToken::new(), &resilience).unwrap();
        assert!(out.degraded);
        assert_eq!(
            out.body.get("fidelity").and_then(Json::as_str),
            Some("moment")
        );
        assert_eq!(out.retries, req.retries);
        assert!(resilience.faults_injected() > 0);
    }

    #[test]
    fn cost_model_learns_from_observations() {
        let r = Resilience::default();
        let before = r.costs().estimate(Fidelity::Moment);
        for _ in 0..64 {
            r.observe(Fidelity::Moment, Duration::from_micros(500));
        }
        let after = r.costs().estimate(Fidelity::Moment);
        assert!(after < before, "{after:?} not below {before:?}");
        assert!(after >= Duration::from_micros(500));
    }

    #[test]
    fn retired_fault_counts_stay_monotone_across_plan_swaps() {
        let r = Resilience::with_faults(Some(Arc::new(FaultPlan::parse("fail=any:1.0").unwrap())));
        let plan = r.faults().unwrap();
        plan.oracle_fault(Fidelity::Moment).unwrap();
        plan.oracle_fault(Fidelity::Moment).unwrap();
        assert_eq!(r.faults_injected(), 2);
        r.set_faults(Some(Arc::new(FaultPlan::parse("fail=any:1.0").unwrap())));
        assert_eq!(r.faults_injected(), 2);
        r.faults().unwrap().oracle_fault(Fidelity::Tree).unwrap();
        assert_eq!(r.faults_injected(), 3);
        r.set_faults(None);
        assert_eq!(r.faults_injected(), 3);
    }

    #[test]
    fn cache_key_is_stable_under_pin_reorder_but_not_options() {
        let tech = Technology::date94();
        let a = request(Algorithm::Ldrg);
        let mut b = a.clone();
        // Same net, sinks listed in a different order.
        b.pins = vec![a.pins[0], a.pins[2], a.pins[3], a.pins[1]];
        let net_a = build_net(&a).unwrap();
        let net_b = build_net(&b).unwrap();
        assert_eq!(cache_key(&net_a, &a, &tech), cache_key(&net_b, &b, &tech));

        let mut c = a.clone();
        c.algorithm = Algorithm::H1;
        assert_ne!(cache_key(&net_a, &a, &tech), cache_key(&net_a, &c, &tech));
        let mut d = a.clone();
        d.max_added_edges = 3;
        assert_ne!(cache_key(&net_a, &a, &tech), cache_key(&net_a, &d, &tech));
        // The candidate universe changes which edges the search can find,
        // so it must split the key.
        let mut f = a.clone();
        f.candidates = CandidateGen::pruned(8);
        assert_ne!(cache_key(&net_a, &a, &tech), cache_key(&net_a, &f, &tech));
        let mut g = f.clone();
        g.candidates = CandidateGen::Pruned {
            k_nearest: 9,
            include_tree_neighbors: true,
        };
        assert_ne!(cache_key(&net_a, &f, &tech), cache_key(&net_a, &g, &tech));
        // Resilience knobs do not change which result is produced.
        let mut e = a.clone();
        e.retries = 9;
        e.degrade = false;
        assert_eq!(cache_key(&net_a, &a, &tech), cache_key(&net_a, &e, &tech));
    }

    #[test]
    fn duplicate_pins_are_deduped_not_fatal() {
        let mut req = request(Algorithm::Mst);
        req.pins.push(req.pins[1]); // repeated pad
        let net = build_net(&req).unwrap();
        assert_eq!(net.len(), 4);
        let out = exec(&req, &CancelToken::new(), &Resilience::default()).unwrap();
        assert_eq!(out.body.get("pins").and_then(Json::as_f64), Some(4.0));
    }
}
