//! Executes one route request: net construction, algorithm dispatch,
//! and the content-addressed cache key.
//!
//! Workers run this with `parallelism: 1` — the pool already keeps
//! every core busy with one net per worker, and nested sweep threads
//! would just fight the pool for cores.

use ntr_circuit::Technology;
use ntr_core::{
    canonical_net_hash, h1_with, ldrg, CancelToken, DelayOracle, Fnv64, LdrgOptions, MomentOracle,
    OracleError, OracleStats, TransientOracle,
};
use ntr_ert::{elmore_routing_tree, ErtOptions};
use ntr_geom::Net;
use ntr_graph::{prim_mst, RoutingGraph};

use crate::json::Json;
use crate::proto::{Algorithm, OracleKind, RouteRequest};

/// Why routing did not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The cancel token tripped (deadline expiry) mid-search.
    Cancelled,
    /// Anything else: bad net, extraction or simulation failure.
    Route(String),
}

impl From<OracleError> for EngineError {
    fn from(e: OracleError) -> Self {
        match e {
            OracleError::Cancelled(_) => EngineError::Cancelled,
            other => EngineError::Route(other.to_string()),
        }
    }
}

/// Builds the request's net, deduplicating repeated pads.
///
/// # Errors
///
/// Returns a human-readable reason when fewer than two distinct pins
/// remain.
pub fn build_net(req: &RouteRequest) -> Result<Net, EngineError> {
    Net::from_points_deduped(req.pins.clone()).map_err(|e| EngineError::Route(e.to_string()))
}

/// The content-addressed cache key: canonical net hash mixed with every
/// request option that changes the routed result.
#[must_use]
pub fn cache_key(net: &Net, req: &RouteRequest, tech: &Technology) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("ntr-route-v1");
    h.write_u64(canonical_net_hash(net, tech));
    h.write_str(req.algorithm.as_str());
    h.write_str(req.oracle.as_str());
    h.write_u64(req.max_added_edges as u64);
    h.finish()
}

/// A routed net, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOutcome {
    /// Response body (everything but `id`/`cached`/`micros`, which are
    /// per-delivery).
    pub body: Json,
    /// Search-cost counters of this request alone.
    pub search: OracleStats,
}

fn body(
    req: &RouteRequest,
    net: &Net,
    graph: &RoutingGraph,
    initial_delay: f64,
    final_delay: f64,
    added_edges: usize,
    search: OracleStats,
) -> RouteOutcome {
    let json = Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("algorithm", Json::str(req.algorithm.as_str())),
        ("oracle", Json::str(req.oracle.as_str())),
        ("pins", Json::Num(net.len() as f64)),
        ("delay_ns", Json::Num(final_delay * 1e9)),
        ("initial_delay_ns", Json::Num(initial_delay * 1e9)),
        ("cost_um", Json::Num(graph.total_cost())),
        ("edges", Json::Num(graph.edge_count() as f64)),
        ("added_edges", Json::Num(added_edges as f64)),
        ("tree", Json::Bool(graph.is_tree())),
        ("search", Json::str(search.to_string())),
    ]);
    RouteOutcome { body: json, search }
}

/// Routes `net` per the request, checking `cancel` cooperatively.
///
/// # Errors
///
/// [`EngineError::Cancelled`] when the token trips mid-search (the
/// service answers `deadline`), [`EngineError::Route`] otherwise.
pub fn execute(
    req: &RouteRequest,
    net: &Net,
    tech: Technology,
    cancel: &CancelToken,
) -> Result<RouteOutcome, EngineError> {
    cancel.check().map_err(|_| EngineError::Cancelled)?;
    let oracle: Box<dyn DelayOracle> = match req.oracle {
        OracleKind::Moment => Box::new(MomentOracle::new(tech)),
        OracleKind::TransientFast => Box::new(TransientOracle::fast(tech)),
        OracleKind::Transient => Box::new(TransientOracle::new(tech)),
    };
    let opts = LdrgOptions {
        max_added_edges: req.max_added_edges,
        parallelism: 1,
        cancel: cancel.clone(),
        ..LdrgOptions::default()
    };
    let route_err = |e: String| EngineError::Route(e);

    match req.algorithm {
        Algorithm::Mst => {
            let graph = prim_mst(net);
            let delay = oracle.evaluate(&graph)?.max();
            Ok(body(
                req,
                net,
                &graph,
                delay,
                delay,
                0,
                OracleStats::default(),
            ))
        }
        Algorithm::Ldrg => {
            let r = ldrg(&prim_mst(net), oracle.as_ref(), &opts)?;
            Ok(body(
                req,
                net,
                &r.graph,
                r.initial_delay,
                r.final_delay(),
                r.iterations.len(),
                r.stats,
            ))
        }
        Algorithm::H1 => {
            let r = h1_with(
                &prim_mst(net),
                oracle.as_ref(),
                req.max_added_edges,
                Some(cancel),
            )?;
            Ok(body(
                req,
                net,
                &r.graph,
                r.initial_delay,
                r.final_delay(),
                r.iterations.len(),
                r.stats,
            ))
        }
        Algorithm::H2 | Algorithm::H3 => {
            let mst = prim_mst(net);
            let initial = oracle.evaluate(&mst)?.max();
            let r = if req.algorithm == Algorithm::H2 {
                ntr_core::h2(&mst, &tech)?
            } else {
                ntr_core::h3(&mst, &tech)?
            };
            cancel.check().map_err(|_| EngineError::Cancelled)?;
            let delay = oracle.evaluate(&r.graph)?.max();
            let added = usize::from(r.added.is_some());
            Ok(body(
                req,
                net,
                &r.graph,
                initial,
                delay,
                added,
                OracleStats::default(),
            ))
        }
        Algorithm::Ert => {
            let graph = elmore_routing_tree(net, &tech, &ErtOptions::default())
                .map_err(|e| route_err(e.to_string()))?;
            cancel.check().map_err(|_| EngineError::Cancelled)?;
            let delay = oracle.evaluate(&graph)?.max();
            Ok(body(
                req,
                net,
                &graph,
                delay,
                delay,
                0,
                OracleStats::default(),
            ))
        }
        Algorithm::ErtLdrg => {
            let base = elmore_routing_tree(net, &tech, &ErtOptions::default())
                .map_err(|e| route_err(e.to_string()))?;
            let r = ldrg(&base, oracle.as_ref(), &opts)?;
            Ok(body(
                req,
                net,
                &r.graph,
                r.initial_delay,
                r.final_delay(),
                r.iterations.len(),
                r.stats,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_geom::Point;
    use std::time::Duration;

    fn request(algorithm: Algorithm) -> RouteRequest {
        RouteRequest {
            id: None,
            algorithm,
            oracle: OracleKind::Moment,
            pins: vec![
                Point::new(0.0, 0.0),
                Point::new(3000.0, 0.0),
                Point::new(0.0, 4000.0),
                Point::new(5000.0, 5000.0),
            ],
            deadline: None,
            max_added_edges: 0,
            use_cache: true,
        }
    }

    #[test]
    fn every_algorithm_routes_the_sample_net() {
        for algorithm in [
            Algorithm::Mst,
            Algorithm::Ldrg,
            Algorithm::H1,
            Algorithm::H2,
            Algorithm::H3,
            Algorithm::Ert,
            Algorithm::ErtLdrg,
        ] {
            let req = request(algorithm);
            let net = build_net(&req).unwrap();
            let out = execute(&req, &net, Technology::date94(), &CancelToken::new())
                .unwrap_or_else(|e| panic!("{algorithm:?}: {e:?}"));
            assert_eq!(out.body.get("ok"), Some(&Json::Bool(true)));
            let delay = out.body.get("delay_ns").and_then(Json::as_f64).unwrap();
            let initial = out
                .body
                .get("initial_delay_ns")
                .and_then(Json::as_f64)
                .unwrap();
            assert!(delay.is_finite() && delay > 0.0, "{algorithm:?}: {delay}");
            // The greedy searches only ever commit improvements; H2/H3
            // are one-shot heuristics with no such guarantee.
            if matches!(
                algorithm,
                Algorithm::Ldrg | Algorithm::H1 | Algorithm::ErtLdrg
            ) {
                assert!(delay <= initial + 1e-9, "{algorithm:?} got worse");
            }
        }
    }

    #[test]
    fn expired_deadline_cancels() {
        let req = request(Algorithm::Ldrg);
        let net = build_net(&req).unwrap();
        let cancel = CancelToken::deadline_in(Duration::ZERO);
        assert_eq!(
            execute(&req, &net, Technology::date94(), &cancel),
            Err(EngineError::Cancelled)
        );
    }

    #[test]
    fn cache_key_is_stable_under_pin_reorder_but_not_options() {
        let tech = Technology::date94();
        let a = request(Algorithm::Ldrg);
        let mut b = a.clone();
        // Same net, sinks listed in a different order.
        b.pins = vec![a.pins[0], a.pins[2], a.pins[3], a.pins[1]];
        let net_a = build_net(&a).unwrap();
        let net_b = build_net(&b).unwrap();
        assert_eq!(cache_key(&net_a, &a, &tech), cache_key(&net_b, &b, &tech));

        let mut c = a.clone();
        c.algorithm = Algorithm::H1;
        assert_ne!(cache_key(&net_a, &a, &tech), cache_key(&net_a, &c, &tech));
        let mut d = a.clone();
        d.max_added_edges = 3;
        assert_ne!(cache_key(&net_a, &a, &tech), cache_key(&net_a, &d, &tech));
    }

    #[test]
    fn duplicate_pins_are_deduped_not_fatal() {
        let mut req = request(Algorithm::Mst);
        req.pins.push(req.pins[1]); // repeated pad
        let net = build_net(&req).unwrap();
        assert_eq!(net.len(), 4);
        let out = execute(&req, &net, Technology::date94(), &CancelToken::new()).unwrap();
        assert_eq!(out.body.get("pins").and_then(Json::as_f64), Some(4.0));
    }
}
