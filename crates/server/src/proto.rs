//! The JSON-lines request/response protocol.
//!
//! One JSON object per line in both directions. The operations:
//!
//! | request | response |
//! |---|---|
//! | `{"op":"route","id":1,"algorithm":"ldrg","net":{...}}` | `{"id":1,"ok":true,...}` |
//! | `{"op":"stats"}` | `{"ok":true,"op":"stats",...}` |
//! | `{"op":"metrics"}` | `{"ok":true,"op":"metrics","body":"<Prometheus exposition>"}` |
//! | `{"op":"profile","top":5,"enable":true}` | `{"ok":true,"op":"profile","top":[...]}` |
//! | `{"op":"profile","source":"sampler"}` | `{"ok":true,"op":"profile","top":[...],"samples":N}` |
//! | `{"op":"query","metric":"ntr_requests_completed_total","res":1}` | `{"ok":true,"op":"query","points":[...]}` |
//! | `{"op":"alerts"}` | `{"ok":true,"op":"alerts","firing":N,"alerts":[...]}` |
//! | `{"op":"faults","plan":"fail=transient:0.5"}` | `{"ok":true,"op":"faults","plan":...,"injected":N}` |
//! | `{"op":"journal"}` | `{"ok":true,"op":"journal","request_events":[...],...}` |
//! | `{"op":"session.create","algorithm":"ldrg","pins":[...]}` | `{"ok":true,"session":7,...}` |
//! | `{"op":"session.mutate","session":7,"ops":[...]}` | `{"ok":true,"session":7,"pending":N}` |
//! | `{"op":"session.reroute","session":7}` | `{"ok":true,"session":7,"path":"refactor",...}` |
//! | `{"op":"session.close","session":7}` | `{"ok":true,"session":7,...per-path counters}` |
//! | `{"op":"shutdown"}` | `{"ok":true,"op":"shutdown"}` then drain & exit |
//!
//! `query` reads the embedded TSDB (see [`ntr_obs::tsdb`]): without
//! `"metric"` it lists the stored series; with one it returns the
//! retained points at resolution `res` seconds (default 1). `alerts`
//! snapshots the SLO burn-rate engine (see [`ntr_obs::slo`]) with
//! per-alert burn rates and edge-counted fire/clear totals. `profile`
//! with `"source":"sampler"` reads the always-on sampling profiler
//! instead of draining recorded spans.
//!
//! # Route request layouts: v2 and v1
//!
//! The **v2** layout groups the knobs by concern — algorithm selection,
//! search parameters, and the resource budget:
//!
//! ```json
//! {"op":"route","id":1,"algorithm":"ldrg",
//!  "params":{"oracle":"moment","max_added_edges":0,"cache":true},
//!  "budget":{"deadline_ms":50,"retries":2,"degrade":true},
//!  "pins":[[0,0],[1,2]]}
//! ```
//!
//! The **v1** flat layout (every knob top-level: `oracle`,
//! `deadline_ms`, `max_added_edges`, `cache`) is still accepted — each
//! field is looked up in its v2 group first, then at the top level, so
//! old clients keep working unchanged and mixed layouts resolve
//! group-first. Responses to both layouts carry the resilience fields
//! `fidelity` (the delay-model rung actually served), `requested_fidelity`,
//! `degraded`, and `retries`.
//!
//! The `faults` op installs, replaces, or clears (`"plan":""`) the
//! fault-injection plan (see [`ntr_core::FaultPlan`] for the grammar)
//! and reports the number of faults injected so far; without `"plan"`
//! it just reports.
//!
//! `profile` answers the "where does the time go" question from a
//! running server: it drains the spans recorded since the last call,
//! aggregates them into self-time per span name
//! (see [`ntr_obs::profile`]), and returns the top `top` entries
//! (default 10). The optional `enable` flag turns span recording on or
//! off first — tracing is off by default, so a typical session is
//! `{"op":"profile","enable":true}`, some traffic, then
//! `{"op":"profile"}` to read the attribution.
//!
//! Route requests carry the net either as
//! `"net":{"source":[x,y],"sinks":[[x,y],...]}` or as a flat
//! `"pins":[[x,y],...]` whose first entry is the source. Responses echo
//! the request's `id` verbatim (any JSON scalar), so clients may pipeline
//! requests and match replies out of order.
//!
//! # Incremental rerouting sessions
//!
//! The `session.*` ops expose [`ntr_core::RoutingSession`] — stateful
//! delta-routing that reuses the previous factorization across requests
//! (see the session module docs for the decision ladder):
//!
//! - `session.create` takes the same net/params layout as `route`
//!   (algorithm, `params.max_added_edges`, `params.candidates`), routes
//!   the net from scratch, and answers with a server-assigned numeric
//!   `session` handle plus the initial route body. Sessions always
//!   serve at **moment fidelity** — the `oracle` knob is ignored — and
//!   never degrade, because incremental reroutes must stay equivalent
//!   to their from-scratch counterparts.
//! - `session.mutate` applies `"ops"`, an array of delta objects applied
//!   in order: `{"op":"add_pin","at":[x,y]}`,
//!   `{"op":"move_pin","pin":3,"to":[x,y]}`,
//!   `{"op":"remove_pin","pin":3}`, `{"op":"add_edge","a":1,"b":4}`,
//!   `{"op":"remove_edge","a":1,"b":4}`. Pins are addressed by net pin
//!   index (0 = source; `remove_pin` shifts later indices down, like
//!   `Vec::remove`). A rejected op stops the batch; earlier ops in the
//!   batch stay applied, and the response reports how many were.
//! - `session.reroute` routes the pending deltas, answering with the
//!   route body plus `"path"`: which rung of the decision ladder served
//!   it (`quiescent`, `rank1`, `refactor`, or `scratch`). Accepts
//!   `budget.deadline_ms` like `route`.
//! - `session.close` ends the session and answers with its lifetime
//!   per-path counters.
//!
//! Session responses **bypass the result cache** in both directions:
//! a session's net mutates under it, so its responses are neither
//! served from nor stored into the content-addressed LRU. Only
//! quiescent full-net `route` requests are cacheable. An op naming an
//! unknown or expired session answers with the structured error code
//! `session` (not a parse error) and increments
//! `ntr_session_errors_total`.
//!
//! Error responses are `{"id":...,"ok":false,"error":CODE,"detail":...}`
//! with stable machine-readable codes: `parse`, `overloaded`, `deadline`,
//! `route`, `session`.

use std::time::Duration;

use ntr_core::CandidateGen;
use ntr_geom::Point;

use crate::json::Json;

/// Stable error codes carried in the `error` field of failure responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not a valid request.
    Parse,
    /// The work queue was full (backpressure): retry later.
    Overloaded,
    /// The request's deadline expired before routing finished.
    Deadline,
    /// Routing itself failed (bad net, numerical failure).
    Route,
    /// A `session.*` op was inconsistent with the session table or the
    /// session's state: unknown/expired handle, invalid delta, or a
    /// full table.
    Session,
}

impl ErrorCode {
    /// The wire form of the code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Route => "route",
            ErrorCode::Session => "session",
        }
    }
}

/// The routing algorithms reachable over the protocol — now the single
/// [`ntr_core::Algorithm`] enum the unified dispatch uses (the wire
/// names are unchanged).
pub use ntr_core::Algorithm;

/// Which delay model scores candidates for this request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleKind {
    /// Graph Elmore via one sparse solve + rank-1 updates (the default —
    /// the serving-grade model).
    #[default]
    Moment,
    /// Lumped fast transient simulation (the paper's inner-loop SPICE).
    TransientFast,
    /// Fine transient simulation (segmented wires, trapezoidal).
    Transient,
}

impl OracleKind {
    /// Parses the wire form.
    #[must_use]
    pub fn parse(s: &str) -> Option<OracleKind> {
        Some(match s {
            "moment" => OracleKind::Moment,
            "transient-fast" => OracleKind::TransientFast,
            "transient" => OracleKind::Transient,
            _ => return None,
        })
    }

    /// The wire form.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            OracleKind::Moment => "moment",
            OracleKind::TransientFast => "transient-fast",
            OracleKind::Transient => "transient",
        }
    }

    /// The fidelity rung this oracle corresponds to on the degradation
    /// ladder.
    #[must_use]
    pub fn fidelity(self) -> ntr_core::Fidelity {
        match self {
            OracleKind::Moment => ntr_core::Fidelity::Moment,
            OracleKind::TransientFast => ntr_core::Fidelity::TransientFast,
            OracleKind::Transient => ntr_core::Fidelity::Transient,
        }
    }
}

/// A parsed `"op":"route"` request.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteRequest {
    /// Client correlation id, echoed verbatim in the response.
    pub id: Option<Json>,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Delay model.
    pub oracle: OracleKind,
    /// Pin list, source first (duplicates are deduped at execution).
    pub pins: Vec<Point>,
    /// Soft deadline measured from enqueue; expired requests answer with
    /// [`ErrorCode::Deadline`] instead of occupying a worker.
    pub deadline: Option<Duration>,
    /// Cap on added edges / iterations (0 = until no improvement).
    pub max_added_edges: usize,
    /// Whether the result cache may serve or store this request.
    pub use_cache: bool,
    /// Retry budget for transient oracle failures (default 2).
    pub retries: u32,
    /// Whether the engine may degrade fidelity instead of failing when
    /// the deadline budget runs out (default `true` — see the migration
    /// note in the README: pre-v2 servers always hard-failed).
    pub degrade: bool,
    /// Candidate universe for the LDRG-family searches. v2 clients set
    /// `"params":{"candidates":{"mode":"pruned","k":8}}`; the default is
    /// the exhaustive scan (bit-identical to pre-v2 behavior).
    pub candidates: CandidateGen,
}

/// Where a `profile` answer draws its data from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileSource {
    /// Drain the spans recorded since the last call (requires span
    /// recording to have been enabled).
    #[default]
    Spans,
    /// Read the always-on sampling profiler's aggregate.
    Sampler,
}

/// What a `session.*` op asks of a live session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionAction {
    /// Open a session by routing the request's net from scratch.
    Create(RouteRequest),
    /// Apply delta ops, in order, to the session's pending batch.
    Mutate {
        /// Server-assigned session handle.
        session: u64,
        /// Deltas, applied in order; the first rejection stops the batch.
        ops: Vec<ntr_core::DeltaOp>,
    },
    /// Route the pending deltas through the decision ladder.
    Reroute {
        /// Server-assigned session handle.
        session: u64,
        /// Per-request deadline, measured from enqueue (combined with
        /// the session's own cancel token).
        deadline: Option<Duration>,
    },
    /// End the session and report its lifetime counters.
    Close {
        /// Server-assigned session handle.
        session: u64,
    },
}

/// A parsed `"op":"session.*"` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRequest {
    /// Client correlation id, echoed verbatim in the response.
    pub id: Option<Json>,
    /// The session operation.
    pub action: SessionAction,
}

/// Any request the protocol accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Route one net.
    Route(RouteRequest),
    /// A stateful incremental-rerouting session op.
    Session(SessionRequest),
    /// Service-level counters snapshot.
    Stats,
    /// Prometheus text exposition of the service's metrics registry.
    Metrics,
    /// Profile attribution: top-N self-time entries from recorded
    /// spans or the sampling profiler.
    Profile {
        /// How many entries to return (default 10).
        top: usize,
        /// When present, switch span recording on/off before profiling
        /// (span source only).
        enable: Option<bool>,
        /// Which profiler to read.
        source: ProfileSource,
    },
    /// Embedded-TSDB read: series listing or one series' points.
    Query {
        /// Series name; `None` (or empty) lists the stored series.
        metric: Option<String>,
        /// Resolution tier in seconds (default 1).
        res_secs: u64,
    },
    /// SLO burn-rate alert snapshot.
    Alerts,
    /// Install, replace, clear, or query the fault-injection plan.
    Faults {
        /// `None` queries the current plan; `Some("")` clears it;
        /// anything else is parsed as a [`ntr_core::FaultPlan`].
        plan: Option<String>,
    },
    /// Flight-recorder snapshot: every retained wide event, LDRG
    /// iteration record, and tail-sampled exemplar.
    Journal,
    /// Graceful shutdown: drain in-flight work, then exit.
    Shutdown,
}

/// Group-first field lookup — the one helper every grouped v2 surface
/// resolves fields through: the `params` and `budget` groups of `route`
/// and `session.create`, and the `budget` group of `session.reroute`.
/// A field is looked up in its named group first, then at the top
/// level, so v1 flat spellings keep working and mixed layouts resolve
/// group-first.
struct GroupLookup<'a> {
    doc: &'a Json,
    group: Option<&'a Json>,
}

impl<'a> GroupLookup<'a> {
    /// Binds `group` on `doc`, rejecting a non-object group value.
    fn new(doc: &'a Json, group: &'static str) -> Result<Self, String> {
        let g = doc.get(group);
        if g.is_some_and(|v| !matches!(v, Json::Obj(_))) {
            return Err(format!("{group} must be an object"));
        }
        Ok(Self { doc, group: g })
    }

    /// The field's value, group-first.
    fn get(&self, name: &str) -> Option<&'a Json> {
        self.group
            .and_then(|g| g.get(name))
            .or_else(|| self.doc.get(name))
    }
}

fn parse_point(v: &Json) -> Result<Point, String> {
    let arr = v.as_arr().ok_or("pin must be a [x,y] array")?;
    if arr.len() != 2 {
        return Err(format!(
            "pin must have exactly 2 coordinates, got {}",
            arr.len()
        ));
    }
    let x = arr[0].as_f64().ok_or("pin x must be a number")?;
    let y = arr[1].as_f64().ok_or("pin y must be a number")?;
    if !x.is_finite() || !y.is_finite() {
        return Err("pin coordinates must be finite".to_owned());
    }
    Ok(Point::new(x, y))
}

fn parse_pins(doc: &Json) -> Result<Vec<Point>, String> {
    if let Some(net) = doc.get("net") {
        let source = parse_point(net.get("source").ok_or("net.source is required")?)?;
        let sinks = net
            .get("sinks")
            .and_then(Json::as_arr)
            .ok_or("net.sinks must be an array of [x,y] pins")?;
        let mut pins = Vec::with_capacity(sinks.len() + 1);
        pins.push(source);
        for s in sinks {
            pins.push(parse_point(s)?);
        }
        Ok(pins)
    } else if let Some(flat) = doc.get("pins").and_then(Json::as_arr) {
        flat.iter().map(parse_point).collect()
    } else {
        Err("route request needs \"net\" or \"pins\"".to_owned())
    }
}

/// Parses one request line (already JSON-decoded).
///
/// # Errors
///
/// Returns a human-readable description of the first problem found; the
/// caller wraps it in an [`ErrorCode::Parse`] response.
pub fn parse_request(doc: &Json) -> Result<Request, String> {
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request needs a string \"op\" field")?;
    match op {
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "journal" => Ok(Request::Journal),
        "shutdown" => Ok(Request::Shutdown),
        "profile" => {
            let top = match doc.get("top") {
                None => 10,
                Some(v) => {
                    let n = v.as_f64().ok_or("top must be a number")?;
                    if !(n.is_finite() && n >= 1.0 && n == n.trunc()) {
                        return Err("top must be a positive integer".to_owned());
                    }
                    n as usize
                }
            };
            let enable = match doc.get("enable") {
                None => None,
                Some(v) => Some(v.as_bool().ok_or("enable must be a boolean")?),
            };
            let source = match doc.get("source") {
                None => ProfileSource::default(),
                Some(v) => match v.as_str() {
                    Some("spans") => ProfileSource::Spans,
                    Some("sampler") => ProfileSource::Sampler,
                    _ => return Err("source must be \"spans\" or \"sampler\"".to_owned()),
                },
            };
            Ok(Request::Profile {
                top,
                enable,
                source,
            })
        }
        "alerts" => Ok(Request::Alerts),
        "query" => {
            let metric = match doc.get("metric") {
                None => None,
                Some(v) => Some(v.as_str().ok_or("metric must be a string")?.to_owned()),
            };
            let res_secs = match doc.get("res") {
                None => 1,
                Some(v) => {
                    let n = v.as_f64().ok_or("res must be a number")?;
                    if !(n.is_finite() && n >= 1.0 && n == n.trunc()) {
                        return Err("res must be a positive integer of seconds".to_owned());
                    }
                    n as u64
                }
            };
            Ok(Request::Query { metric, res_secs })
        }
        "faults" => {
            let plan = match doc.get("plan") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or("plan must be a string (\"\" clears it)")?
                        .to_owned(),
                ),
            };
            Ok(Request::Faults { plan })
        }
        "route" => Ok(Request::Route(parse_route(doc)?)),
        "session.create" => {
            let req = parse_route(doc)?;
            Ok(Request::Session(SessionRequest {
                id: req.id.clone(),
                action: SessionAction::Create(req),
            }))
        }
        "session.mutate" => {
            let session = parse_session_handle(doc)?;
            let ops = doc
                .get("ops")
                .and_then(Json::as_arr)
                .ok_or("session.mutate needs an \"ops\" array of delta objects")?;
            if ops.is_empty() {
                return Err("session.mutate needs at least one delta op".to_owned());
            }
            let ops = ops.iter().map(parse_delta_op).collect::<Result<_, _>>()?;
            Ok(Request::Session(SessionRequest {
                id: doc.get("id").cloned(),
                action: SessionAction::Mutate { session, ops },
            }))
        }
        "session.reroute" => {
            let session = parse_session_handle(doc)?;
            let budget = GroupLookup::new(doc, "budget")?;
            let deadline = parse_deadline(&budget)?;
            Ok(Request::Session(SessionRequest {
                id: doc.get("id").cloned(),
                action: SessionAction::Reroute { session, deadline },
            }))
        }
        "session.close" => {
            let session = parse_session_handle(doc)?;
            Ok(Request::Session(SessionRequest {
                id: doc.get("id").cloned(),
                action: SessionAction::Close { session },
            }))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Parses the net + knobs shared by `route` and `session.create`. The
/// v2 layout groups knobs under `params` (search) and `budget`
/// (resources); the v1 flat layout keeps every knob top-level. Both
/// groups resolve through [`GroupLookup`].
fn parse_route(doc: &Json) -> Result<RouteRequest, String> {
    let params = GroupLookup::new(doc, "params")?;
    let budget = GroupLookup::new(doc, "budget")?;
    let algorithm = match doc.get("algorithm").and_then(Json::as_str) {
        None => Algorithm::default(),
        Some(name) => Algorithm::parse(name).ok_or_else(|| {
            format!(
                "unknown algorithm {name:?}; expected one of {:?}",
                Algorithm::ALL
            )
        })?,
    };
    let oracle = match params.get("oracle").and_then(Json::as_str) {
        None => OracleKind::default(),
        Some(name) => OracleKind::parse(name).ok_or_else(|| format!("unknown oracle {name:?}"))?,
    };
    let deadline = parse_deadline(&budget)?;
    let max_added_edges = match params.get("max_added_edges") {
        None => 0,
        Some(v) => {
            let n = v.as_f64().ok_or("max_added_edges must be a number")?;
            if !(n.is_finite() && n >= 0.0 && n == n.trunc()) {
                return Err("max_added_edges must be a non-negative integer".to_owned());
            }
            n as usize
        }
    };
    let use_cache = match params.get("cache") {
        None => true,
        Some(v) => v.as_bool().ok_or("cache must be a boolean")?,
    };
    let retries = match budget.get("retries") {
        None => 2,
        Some(v) => {
            let n = v.as_f64().ok_or("retries must be a number")?;
            if !(n.is_finite() && (0.0..=100.0).contains(&n) && n == n.trunc()) {
                return Err("retries must be an integer in 0..=100".to_owned());
            }
            n as u32
        }
    };
    let degrade = match budget.get("degrade") {
        None => true,
        Some(v) => v.as_bool().ok_or("degrade must be a boolean")?,
    };
    let candidates = match params.get("candidates") {
        None => CandidateGen::Exhaustive,
        Some(v) => parse_candidates(v)?,
    };
    let pins = parse_pins(doc)?;
    if pins.len() < 2 {
        return Err("a net needs at least a source and one sink".to_owned());
    }
    Ok(RouteRequest {
        id: doc.get("id").cloned(),
        algorithm,
        oracle,
        pins,
        deadline,
        max_added_edges,
        use_cache,
        retries,
        degrade,
        candidates,
    })
}

/// Parses `budget.deadline_ms` (group-first) into a duration.
fn parse_deadline(budget: &GroupLookup) -> Result<Option<Duration>, String> {
    match budget.get("deadline_ms") {
        None => Ok(None),
        Some(v) => {
            let ms = v.as_f64().ok_or("deadline_ms must be a number")?;
            if !(ms.is_finite() && ms >= 0.0) {
                return Err("deadline_ms must be finite and non-negative".to_owned());
            }
            Ok(Some(Duration::from_secs_f64(ms / 1e3)))
        }
    }
}

/// Parses the numeric `"session"` handle of a `session.*` op.
fn parse_session_handle(doc: &Json) -> Result<u64, String> {
    let v = doc
        .get("session")
        .ok_or("session op needs a numeric \"session\" handle")?;
    let n = v.as_f64().ok_or("session must be a number")?;
    if !(n.is_finite() && n >= 0.0 && n == n.trunc()) {
        return Err("session must be a non-negative integer".to_owned());
    }
    Ok(n as u64)
}

/// Parses a non-negative integer field of a delta op.
fn parse_pin_index(v: Option<&Json>, what: &str) -> Result<usize, String> {
    let v = v.ok_or_else(|| format!("{what} is required"))?;
    let n = v
        .as_f64()
        .ok_or_else(|| format!("{what} must be a number"))?;
    if !(n.is_finite() && n >= 0.0 && n == n.trunc()) {
        return Err(format!("{what} must be a non-negative integer"));
    }
    Ok(n as usize)
}

/// Parses one entry of a `session.mutate` `"ops"` array.
fn parse_delta_op(v: &Json) -> Result<ntr_core::DeltaOp, String> {
    use ntr_core::DeltaOp;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("each delta needs a string \"op\" field")?;
    Ok(match op {
        "add_pin" => DeltaOp::AddPin(parse_point(
            v.get("at").ok_or("add_pin needs \"at\":[x,y]")?,
        )?),
        "move_pin" => DeltaOp::MovePin {
            pin: parse_pin_index(v.get("pin"), "move_pin.pin")?,
            to: parse_point(v.get("to").ok_or("move_pin needs \"to\":[x,y]")?)?,
        },
        "remove_pin" => DeltaOp::RemovePin {
            pin: parse_pin_index(v.get("pin"), "remove_pin.pin")?,
        },
        "add_edge" => DeltaOp::AddEdge {
            a: parse_pin_index(v.get("a"), "add_edge.a")?,
            b: parse_pin_index(v.get("b"), "add_edge.b")?,
        },
        "remove_edge" => DeltaOp::RemoveEdge {
            a: parse_pin_index(v.get("a"), "remove_edge.a")?,
            b: parse_pin_index(v.get("b"), "remove_edge.b")?,
        },
        other => {
            return Err(format!(
                "unknown delta op {other:?}; expected add_pin, move_pin, remove_pin, add_edge, or remove_edge"
            ))
        }
    })
}

/// Parses the v2 `"candidates"` group:
/// `{"mode":"exhaustive"}` or `{"mode":"pruned","k":8,"tree_neighbors":true}`.
fn parse_candidates(v: &Json) -> Result<CandidateGen, String> {
    if !matches!(v, Json::Obj(_)) {
        return Err("candidates must be an object".to_owned());
    }
    let mode = v
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("candidates needs a string \"mode\" field")?;
    match mode {
        "exhaustive" => Ok(CandidateGen::Exhaustive),
        "pruned" => {
            let k = match v.get("k") {
                None => 8,
                Some(kv) => {
                    let n = kv.as_f64().ok_or("candidates.k must be a number")?;
                    if !(n.is_finite() && n >= 1.0 && n == n.trunc()) {
                        return Err("candidates.k must be a positive integer".to_owned());
                    }
                    n as usize
                }
            };
            let include_tree_neighbors = match v.get("tree_neighbors") {
                None => true,
                Some(t) => t
                    .as_bool()
                    .ok_or("candidates.tree_neighbors must be a boolean")?,
            };
            Ok(CandidateGen::Pruned {
                k_nearest: k,
                include_tree_neighbors,
            })
        }
        other => Err(format!(
            "unknown candidates mode {other:?}; expected \"exhaustive\" or \"pruned\""
        )),
    }
}

/// Builds a failure response.
#[must_use]
pub fn error_response(id: Option<&Json>, code: ErrorCode, detail: &str) -> Json {
    Json::obj(vec![
        ("id", id.cloned().unwrap_or(Json::Null)),
        ("ok", Json::Bool(false)),
        ("error", Json::str(code.as_str())),
        ("detail", Json::str(detail)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(line: &str) -> RouteRequest {
        match parse_request(&Json::parse(line).unwrap()).unwrap() {
            Request::Route(r) => r,
            other => panic!("expected route, got {other:?}"),
        }
    }

    #[test]
    fn nested_and_flat_net_forms_agree() {
        let a = route(r#"{"op":"route","net":{"source":[0,0],"sinks":[[1,2],[3,4]]}}"#);
        let b = route(r#"{"op":"route","pins":[[0,0],[1,2],[3,4]]}"#);
        assert_eq!(a.pins, b.pins);
        assert_eq!(a.algorithm, Algorithm::Ldrg);
        assert_eq!(a.oracle, OracleKind::Moment);
        assert!(a.use_cache);
        assert_eq!(a.deadline, None);
    }

    #[test]
    fn options_parse() {
        let r = route(
            r#"{"op":"route","id":"x9","algorithm":"h1","oracle":"transient-fast","deadline_ms":250,"max_added_edges":2,"cache":false,"pins":[[0,0],[5,5]]}"#,
        );
        assert_eq!(r.id, Some(Json::Str("x9".to_owned())));
        assert_eq!(r.algorithm, Algorithm::H1);
        assert_eq!(r.oracle, OracleKind::TransientFast);
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));
        assert_eq!(r.max_added_edges, 2);
        assert!(!r.use_cache);
    }

    #[test]
    fn v2_grouped_layout_parses() {
        let r = route(
            r#"{"op":"route","id":7,"algorithm":"h1",
                "params":{"oracle":"transient-fast","max_added_edges":2,"cache":false},
                "budget":{"deadline_ms":50,"retries":4,"degrade":false},
                "pins":[[0,0],[5,5]]}"#,
        );
        assert_eq!(r.algorithm, Algorithm::H1);
        assert_eq!(r.oracle, OracleKind::TransientFast);
        assert_eq!(r.max_added_edges, 2);
        assert!(!r.use_cache);
        assert_eq!(r.deadline, Some(Duration::from_millis(50)));
        assert_eq!(r.retries, 4);
        assert!(!r.degrade);
    }

    #[test]
    fn candidates_group_parses() {
        let r = route(r#"{"op":"route","pins":[[0,0],[1,1]]}"#);
        assert_eq!(r.candidates, CandidateGen::Exhaustive);
        let r = route(
            r#"{"op":"route","params":{"candidates":{"mode":"pruned","k":8}},
                "pins":[[0,0],[1,1]]}"#,
        );
        assert_eq!(
            r.candidates,
            CandidateGen::Pruned {
                k_nearest: 8,
                include_tree_neighbors: true
            }
        );
        let r = route(
            r#"{"op":"route","params":{"candidates":
                {"mode":"pruned","k":3,"tree_neighbors":false}},
                "pins":[[0,0],[1,1]]}"#,
        );
        assert_eq!(
            r.candidates,
            CandidateGen::Pruned {
                k_nearest: 3,
                include_tree_neighbors: false
            }
        );
        let r = route(
            r#"{"op":"route","params":{"candidates":{"mode":"exhaustive"}},
                "pins":[[0,0],[1,1]]}"#,
        );
        assert_eq!(r.candidates, CandidateGen::Exhaustive);
        for bad in [
            r#"{"op":"route","params":{"candidates":"pruned"},"pins":[[0,0],[1,1]]}"#,
            r#"{"op":"route","params":{"candidates":{"mode":"magic"}},"pins":[[0,0],[1,1]]}"#,
            r#"{"op":"route","params":{"candidates":{"mode":"pruned","k":0}},"pins":[[0,0],[1,1]]}"#,
            r#"{"op":"route","params":{"candidates":{"mode":"pruned","k":1.5}},"pins":[[0,0],[1,1]]}"#,
            r#"{"op":"route","params":{"candidates":{"k":8}},"pins":[[0,0],[1,1]]}"#,
        ] {
            assert!(
                parse_request(&Json::parse(bad).unwrap()).is_err(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn resilience_defaults_apply_to_v1_requests() {
        let r = route(r#"{"op":"route","pins":[[0,0],[1,1]]}"#);
        assert_eq!(r.retries, 2);
        assert!(r.degrade);
    }

    #[test]
    fn group_fields_win_over_top_level_duplicates() {
        let r = route(
            r#"{"op":"route","oracle":"transient","deadline_ms":999,
                "params":{"oracle":"moment"},"budget":{"deadline_ms":10},
                "pins":[[0,0],[1,1]]}"#,
        );
        assert_eq!(r.oracle, OracleKind::Moment);
        assert_eq!(r.deadline, Some(Duration::from_millis(10)));
    }

    #[test]
    fn faults_op_parses() {
        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"faults"}"#).unwrap()).unwrap(),
            Request::Faults { plan: None }
        );
        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"faults","plan":"fail=any:0.5"}"#).unwrap())
                .unwrap(),
            Request::Faults {
                plan: Some("fail=any:0.5".to_owned())
            }
        );
        assert!(parse_request(&Json::parse(r#"{"op":"faults","plan":5}"#).unwrap()).is_err());
    }

    #[test]
    fn stats_metrics_and_shutdown_parse() {
        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"metrics"}"#).unwrap()).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"shutdown"}"#).unwrap()).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"journal"}"#).unwrap()).unwrap(),
            Request::Journal
        );
    }

    #[test]
    fn profile_parses_with_defaults_and_options() {
        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"profile"}"#).unwrap()).unwrap(),
            Request::Profile {
                top: 10,
                enable: None,
                source: ProfileSource::Spans
            }
        );
        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"profile","top":3,"enable":true}"#).unwrap())
                .unwrap(),
            Request::Profile {
                top: 3,
                enable: Some(true),
                source: ProfileSource::Spans
            }
        );
        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"profile","source":"sampler"}"#).unwrap()).unwrap(),
            Request::Profile {
                top: 10,
                enable: None,
                source: ProfileSource::Sampler
            }
        );
        assert!(
            parse_request(&Json::parse(r#"{"op":"profile","source":"perf"}"#).unwrap()).is_err()
        );
    }

    #[test]
    fn query_and_alerts_parse() {
        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"query"}"#).unwrap()).unwrap(),
            Request::Query {
                metric: None,
                res_secs: 1
            }
        );
        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"query","metric":"m","res":60}"#).unwrap())
                .unwrap(),
            Request::Query {
                metric: Some("m".to_owned()),
                res_secs: 60
            }
        );
        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"alerts"}"#).unwrap()).unwrap(),
            Request::Alerts
        );
        for bad in [
            r#"{"op":"query","metric":3}"#,
            r#"{"op":"query","res":0}"#,
            r#"{"op":"query","res":1.5}"#,
            r#"{"op":"query","res":"fast"}"#,
        ] {
            assert!(
                parse_request(&Json::parse(bad).unwrap()).is_err(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        for line in [
            r#"{"x":1}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"profile","top":0}"#,
            r#"{"op":"profile","top":2.5}"#,
            r#"{"op":"profile","enable":"yes"}"#,
            r#"{"op":"route"}"#,
            r#"{"op":"route","pins":[[0,0]]}"#,
            r#"{"op":"route","pins":[[0,0],[1]]}"#,
            r#"{"op":"route","algorithm":"simulated-annealing","pins":[[0,0],[1,1]]}"#,
            r#"{"op":"route","deadline_ms":-5,"pins":[[0,0],[1,1]]}"#,
            r#"{"op":"route","pins":[[0,0],[1,null]]}"#,
            r#"{"op":"route","params":3,"pins":[[0,0],[1,1]]}"#,
            r#"{"op":"route","budget":[],"pins":[[0,0],[1,1]]}"#,
            r#"{"op":"route","budget":{"retries":-1},"pins":[[0,0],[1,1]]}"#,
            r#"{"op":"route","budget":{"retries":2.5},"pins":[[0,0],[1,1]]}"#,
            r#"{"op":"route","budget":{"degrade":"yes"},"pins":[[0,0],[1,1]]}"#,
        ] {
            let doc = Json::parse(line).unwrap();
            assert!(parse_request(&doc).is_err(), "{line} should be rejected");
        }
    }

    #[test]
    fn error_response_shape() {
        let resp = error_response(Some(&Json::Num(3.0)), ErrorCode::Overloaded, "queue full");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("error").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(resp.get("id").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn session_ops_parse() {
        use ntr_core::DeltaOp;
        let r = parse_request(
            &Json::parse(
                r#"{"op":"session.create","id":9,"algorithm":"ldrg","pins":[[0,0],[5,5]]}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let Request::Session(SessionRequest {
            id,
            action: SessionAction::Create(req),
        }) = r
        else {
            panic!("expected session.create, got {r:?}");
        };
        assert_eq!(id, Some(Json::Num(9.0)));
        assert_eq!(req.algorithm, Algorithm::Ldrg);
        assert_eq!(req.pins.len(), 2);

        let r = parse_request(
            &Json::parse(
                r#"{"op":"session.mutate","session":3,"ops":[
                    {"op":"add_pin","at":[1,2]},
                    {"op":"move_pin","pin":1,"to":[3,4]},
                    {"op":"remove_pin","pin":2},
                    {"op":"add_edge","a":0,"b":1},
                    {"op":"remove_edge","a":1,"b":2}]}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let Request::Session(SessionRequest {
            action: SessionAction::Mutate { session, ops },
            ..
        }) = r
        else {
            panic!("expected session.mutate, got {r:?}");
        };
        assert_eq!(session, 3);
        assert_eq!(
            ops,
            vec![
                DeltaOp::AddPin(Point::new(1.0, 2.0)),
                DeltaOp::MovePin {
                    pin: 1,
                    to: Point::new(3.0, 4.0)
                },
                DeltaOp::RemovePin { pin: 2 },
                DeltaOp::AddEdge { a: 0, b: 1 },
                DeltaOp::RemoveEdge { a: 1, b: 2 },
            ]
        );

        let r = parse_request(
            &Json::parse(r#"{"op":"session.reroute","session":3,"budget":{"deadline_ms":50}}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Session(SessionRequest {
                id: None,
                action: SessionAction::Reroute {
                    session: 3,
                    deadline: Some(Duration::from_millis(50)),
                },
            })
        );
        // The flat v1-style spelling resolves through the same helper.
        let flat = parse_request(
            &Json::parse(r#"{"op":"session.reroute","session":3,"deadline_ms":50}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(r, flat);

        assert_eq!(
            parse_request(&Json::parse(r#"{"op":"session.close","session":3}"#).unwrap()).unwrap(),
            Request::Session(SessionRequest {
                id: None,
                action: SessionAction::Close { session: 3 },
            })
        );
    }

    #[test]
    fn bad_session_requests_are_rejected() {
        for line in [
            r#"{"op":"session.mutate","ops":[{"op":"remove_pin","pin":1}]}"#,
            r#"{"op":"session.mutate","session":"x","ops":[{"op":"remove_pin","pin":1}]}"#,
            r#"{"op":"session.mutate","session":1}"#,
            r#"{"op":"session.mutate","session":1,"ops":[]}"#,
            r#"{"op":"session.mutate","session":1,"ops":[{"op":"teleport_pin"}]}"#,
            r#"{"op":"session.mutate","session":1,"ops":[{"op":"move_pin","pin":-1,"to":[0,0]}]}"#,
            r#"{"op":"session.mutate","session":1,"ops":[{"op":"move_pin","pin":1}]}"#,
            r#"{"op":"session.mutate","session":1,"ops":[{"op":"add_pin","at":[1]}]}"#,
            r#"{"op":"session.reroute"}"#,
            r#"{"op":"session.reroute","session":1,"budget":3}"#,
            r#"{"op":"session.close","session":1.5}"#,
            r#"{"op":"session.create","pins":[[0,0]]}"#,
        ] {
            let doc = Json::parse(line).unwrap();
            assert!(parse_request(&doc).is_err(), "{line} should be rejected");
        }
    }

    #[test]
    fn session_error_code_is_stable() {
        assert_eq!(ErrorCode::Session.as_str(), "session");
        let resp = error_response(None, ErrorCode::Session, "unknown session 7");
        assert_eq!(resp.get("error").and_then(Json::as_str), Some("session"));
    }

    #[test]
    fn algorithm_names_round_trip() {
        for name in Algorithm::ALL {
            assert_eq!(Algorithm::parse(name).unwrap().as_str(), name);
        }
    }
}
