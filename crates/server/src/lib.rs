//! `ntr-server`: a concurrent batch routing service over the
//! non-tree routing algorithms of `ntr-core`.
//!
//! The paper's experiments route one net at a time; a placement flow
//! routes hundreds of thousands. This crate wraps the routers in a
//! long-lived service shaped for that workload:
//!
//! - **Protocol** ([`proto`], [`json`]): JSON-lines — one request
//!   object per line in, one response object per line out, correlated
//!   by `id`. Hand-rolled JSON because the build is offline.
//! - **Concurrency** ([`pool`], [`service`]): a bounded queue feeding
//!   a fixed worker pool. A full queue answers `overloaded`
//!   immediately — backpressure instead of unbounded latency.
//! - **Deadlines**: per-request budgets enforced cooperatively by a
//!   [`CancelToken`](ntr_core::CancelToken) threaded into the greedy
//!   searches; an expiring request stops within one candidate score.
//! - **Resilience** ([`engine`]): rather than answering `deadline`,
//!   requests degrade down the [`Fidelity`](ntr_core::Fidelity) ladder
//!   (transient → moment → tree-only Elmore) when the remaining budget
//!   can't cover the requested oracle; transient oracle failures retry
//!   with jittered backoff; a [`FaultPlan`](ntr_core::FaultPlan)
//!   (`NTR_FAULTS` or the `faults` op) injects faults for chaos testing.
//! - **Caching** ([`cache`], [`engine`]): a content-addressed LRU on
//!   the canonical net hash — pin order, `-0.0`, and duplicate pads
//!   don't defeat it.
//! - **Transports** ([`server`]): `--stdio` for pipelines and tests,
//!   `--listen` for TCP.
//! - **Observability** ([`stats`], [`statusz`], [`http`]): per-service
//!   counters and histograms on `/metrics`, a sliding-window `/statusz`
//!   dashboard, and the process-wide flight recorder
//!   ([`ntr_obs::journal`]) surfaced as `{"op":"journal"}` and
//!   `GET /journal`.
//!
//! Two binaries ship with the crate: `ntr-serve` (the server) and
//! `ntr-loadgen` (workload generator measuring throughput, latency
//! percentiles, and cache hit rate against a spawned server).
//!
//! # Protocol example
//!
//! ```text
//! → {"op":"route","id":1,"algorithm":"ldrg","net":{"source":[0,0],"sinks":[[3000,0],[0,4000]]}}
//! ← {"ok":true,"algorithm":"ldrg",...,"delay_ns":0.72,"id":1,"cached":false,"micros":412}
//! → {"op":"stats"}
//! ← {"ok":true,"op":"stats","received":1,"completed":1,...}
//! ```
//!
//! # Embedding example
//!
//! ```
//! use std::sync::mpsc;
//! use ntr_server::proto::{Algorithm, OracleKind, RouteRequest};
//! use ntr_server::service::{Service, ServiceConfig};
//! use ntr_geom::Point;
//!
//! let service = Service::start(&ServiceConfig { workers: 2, ..Default::default() });
//! let (tx, rx) = mpsc::channel();
//! service.submit(
//!     RouteRequest {
//!         id: None,
//!         algorithm: Algorithm::Ldrg,
//!         oracle: OracleKind::Moment,
//!         pins: vec![Point::new(0.0, 0.0), Point::new(3000.0, 0.0), Point::new(0.0, 4000.0)],
//!         deadline: None,
//!         max_added_edges: 0,
//!         use_cache: true,
//!         retries: 2,
//!         degrade: true,
//!         candidates: ntr_core::CandidateGen::Exhaustive,
//!     },
//!     Box::new(move |response| tx.send(response).unwrap()),
//! );
//! let response = rx.recv().unwrap();
//! assert_eq!(response.get("ok"), Some(&ntr_server::json::Json::Bool(true)));
//! service.shutdown();
//! ```

pub mod cache;
pub mod engine;
pub mod http;
pub mod pool;
pub mod proto;
pub mod server;
pub mod service;
pub mod sessions;
pub mod stats;
pub mod statusz;

/// The hand-rolled JSON module, rehomed to `ntr-obs` (the trace
/// exporters build on it too); re-exported here so existing
/// `ntr_server::json::Json` paths keep working.
pub use ntr_obs::json;

pub use json::Json;
pub use proto::{Algorithm, ErrorCode, OracleKind, Request, RouteRequest};
pub use service::{Respond, Service, ServiceConfig};
