//! End-to-end test of the stdio transport: spawn the real `ntr-serve`
//! binary, speak the wire protocol, check responses and shutdown.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use ntr_server::json::Json;

#[test]
fn stdio_round_trip_with_cache_stats_and_shutdown() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ntr-serve"))
        .args(["--stdio", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("ntr-serve spawns");
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let mut ask = |line: &str| -> Json {
        writeln!(stdin, "{line}").unwrap();
        let reply = lines.next().expect("a response line").unwrap();
        Json::parse(&reply).unwrap_or_else(|e| panic!("bad response {reply:?}: {e}"))
    };

    // Route, then repeat the identical net: the second answer is cached.
    let route = r#"{"op":"route","id":1,"algorithm":"ldrg","net":{"source":[0,0],"sinks":[[3000,0],[0,4000],[5000,5000]]}}"#;
    let first = ask(route);
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{first}");
    assert_eq!(first.get("id").and_then(Json::as_f64), Some(1.0));
    assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
    let second = ask(&route.replace(r#""id":1"#, r#""id":2"#));
    assert_eq!(second.get("cached"), Some(&Json::Bool(true)), "{second}");
    assert_eq!(second.get("id").and_then(Json::as_f64), Some(2.0));
    assert_eq!(second.get("delay_ns"), first.get("delay_ns"));

    // Malformed JSON and a bad request both answer parse errors.
    let garbage = ask("{nope");
    assert_eq!(garbage.get("error").and_then(Json::as_str), Some("parse"));
    let bad = ask(r#"{"op":"route","id":9,"pins":[[0,0]]}"#);
    assert_eq!(bad.get("error").and_then(Json::as_str), Some("parse"));
    assert_eq!(bad.get("id").and_then(Json::as_f64), Some(9.0));

    // Stats reflect the traffic.
    let stats = ask(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(stats.get("received").and_then(Json::as_f64), Some(2.0));
    assert_eq!(stats.get("completed").and_then(Json::as_f64), Some(2.0));
    assert_eq!(stats.get("cache_hits").and_then(Json::as_f64), Some(1.0));
    assert!(stats.get("per_algorithm").unwrap().get("ldrg").is_some());

    // Profile: enable tracing, route, then read the attribution.
    let armed = ask(r#"{"op":"profile","enable":true}"#);
    assert_eq!(armed.get("ok"), Some(&Json::Bool(true)), "{armed}");
    assert_eq!(armed.get("tracing"), Some(&Json::Bool(true)));
    let traced = ask(&route.replace(r#""id":1"#, r#""id":3,"cache":false"#));
    assert_eq!(traced.get("ok"), Some(&Json::Bool(true)), "{traced}");
    let profile = ask(r#"{"op":"profile","top":5,"enable":false}"#);
    assert_eq!(profile.get("op").and_then(Json::as_str), Some("profile"));
    assert!(
        profile.get("spans").and_then(Json::as_f64).unwrap() >= 1.0,
        "{profile}"
    );
    let top = profile
        .get("top")
        .and_then(Json::as_arr)
        .expect("top array");
    assert!(!top.is_empty() && top.len() <= 5, "{profile}");
    assert!(
        top.iter()
            .any(|e| { e.get("name").and_then(Json::as_str) == Some("server.request") }),
        "server.request span missing from {profile}"
    );
    for e in top {
        assert!(e.get("self_ns").and_then(Json::as_f64).is_some());
        assert!(e.get("count").and_then(Json::as_f64).unwrap() >= 1.0);
    }

    // Graceful shutdown: acknowledged, then the process exits cleanly.
    let bye = ask(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("op").and_then(Json::as_str), Some("shutdown"));
    drop(stdin);
    let status = child.wait().unwrap();
    assert!(status.success());
}

#[test]
fn eof_is_a_clean_shutdown() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ntr-serve"))
        .args(["--stdio", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("ntr-serve spawns");
    let mut stdin = child.stdin.take().unwrap();
    writeln!(
        stdin,
        r#"{{"op":"route","id":"last","algorithm":"h1","pins":[[0,0],[2500,1500]]}}"#
    )
    .unwrap();
    drop(stdin); // EOF with a request in flight: it must still be answered
    let mut out = String::new();
    use std::io::Read as _;
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut out)
        .unwrap();
    let status = child.wait().unwrap();
    assert!(status.success());
    let response = Json::parse(out.lines().next().expect("one response")).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
    assert_eq!(response.get("id").and_then(Json::as_str), Some("last"));
}
