//! The resilience contract, exercised in-process: under a fault plan
//! that fails every transient-fidelity oracle call, requests degrade to
//! the moment rung and still answer `ok` — never `deadline`, never a
//! hard `route` error.

use std::sync::{mpsc, Arc};
use std::time::Duration;

use ntr_core::FaultPlan;
use ntr_geom::{Layout, NetGenerator, Point};
use ntr_server::json::Json;
use ntr_server::proto::{Algorithm, OracleKind, RouteRequest};
use ntr_server::service::{Service, ServiceConfig};

fn request(pins: Vec<Point>, deadline: Option<Duration>) -> RouteRequest {
    RouteRequest {
        id: None,
        algorithm: Algorithm::Ldrg,
        oracle: OracleKind::TransientFast,
        pins,
        deadline,
        max_added_edges: 0,
        use_cache: false,
        retries: 2,
        degrade: true,
        candidates: ntr_core::CandidateGen::Exhaustive,
    }
}

fn random_pins(seed: u64, size: usize) -> Vec<Point> {
    NetGenerator::new(Layout::date94(), seed)
        .random_net(size)
        .unwrap()
        .pins()
        .to_vec()
}

fn chaos_service() -> Service {
    Service::start(&ServiceConfig {
        workers: 2,
        faults: Some(Arc::new(
            FaultPlan::parse("seed=1994;fail=transient:1.0").unwrap(),
        )),
        ..ServiceConfig::default()
    })
}

#[test]
fn certain_transient_faults_under_deadline_degrade_to_moment() {
    let service = chaos_service();
    let (tx, rx) = mpsc::channel();
    const N: u64 = 12;
    // A 5 s deadline admits the transient-fast attempt (estimated cost
    // ~150 ms), so the injected faults actually fire; the retry budget
    // is then spent before the ladder descends.
    for seed in 0..N {
        let tx = tx.clone();
        service.submit(
            request(random_pins(seed, 8), Some(Duration::from_secs(5))),
            Box::new(move |r| tx.send(r).unwrap()),
        );
    }
    drop(tx);
    let responses: Vec<Json> = rx.iter().collect();
    assert_eq!(responses.len() as u64, N, "every submit answers");
    for r in &responses {
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "hard failure: {r}");
        // The plan fails 100% of transient-rung calls, so after the
        // retry budget every request must land on the moment rung.
        assert_eq!(
            r.get("fidelity").and_then(Json::as_str),
            Some("moment"),
            "{r}"
        );
        assert_eq!(
            r.get("requested_fidelity").and_then(Json::as_str),
            Some("transient-fast")
        );
        assert_eq!(r.get("degraded"), Some(&Json::Bool(true)), "{r}");
        assert_eq!(
            r.get("retries").and_then(Json::as_f64),
            Some(2.0),
            "the retry budget should be spent before degrading: {r}"
        );
    }
    let stats = service.stats_json();
    let field = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    assert_eq!(field("overloaded"), 0.0);
    assert_eq!(field("deadline_expired"), 0.0);
    assert_eq!(field("errors"), 0.0);
    assert_eq!(field("degraded"), N as f64);
    assert_eq!(field("retries"), (2 * N) as f64, "{stats}");
    // Initial attempt + 2 retries, all injected, per request.
    assert_eq!(field("faults_injected"), (3 * N) as f64, "{stats}");

    // Both new counters must be visible on the scrape surface.
    let exposition = service.metrics_text();
    ntr_obs::prometheus::check_exposition(&exposition).unwrap();
    assert!(exposition.contains("ntr_requests_degraded_total 12"));
    assert!(exposition.contains("ntr_retries_total 24"));
    assert!(exposition.contains("ntr_faults_injected_total 36"));
    service.shutdown();
}

#[test]
fn tight_deadlines_preempt_the_transient_rung_entirely() {
    let service = chaos_service();
    let (tx, rx) = mpsc::channel();
    service.submit(
        request(random_pins(21, 8), Some(Duration::from_millis(50))),
        Box::new(move |r| tx.send(r).unwrap()),
    );
    let r = rx.recv_timeout(Duration::from_secs(60)).unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    // 50 ms cannot cover the ~150 ms transient-fast estimate, so the
    // engine descends before the oracle (and its fault gate) ever runs:
    // degraded, but zero retries and zero injections.
    assert_eq!(
        r.get("fidelity").and_then(Json::as_str),
        Some("moment"),
        "{r}"
    );
    assert_eq!(r.get("degraded"), Some(&Json::Bool(true)));
    assert_eq!(r.get("retries").and_then(Json::as_f64), Some(0.0));
    assert_eq!(service.faults_injected(), 0);
    service.shutdown();
}

#[test]
fn degraded_results_are_not_cached() {
    let service = chaos_service();
    let pins = random_pins(7, 8);
    let route = |use_cache: bool| {
        let (tx, rx) = mpsc::channel();
        let mut req = request(pins.clone(), None);
        req.use_cache = use_cache;
        service.submit(req, Box::new(move |r| tx.send(r).unwrap()));
        rx.recv_timeout(Duration::from_secs(60)).unwrap()
    };
    let first = route(true);
    assert_eq!(first.get("degraded"), Some(&Json::Bool(true)), "{first}");
    // The identical cache-eligible request routes again: the degraded
    // body never entered the cache.
    let second = route(true);
    assert_eq!(second.get("cached"), Some(&Json::Bool(false)), "{second}");
    assert_eq!(
        service
            .stats_json()
            .get("cache_hits")
            .and_then(Json::as_f64),
        Some(0.0)
    );
    service.shutdown();
}

#[test]
fn fault_plan_swaps_restore_full_fidelity() {
    let service = chaos_service();
    let route = || {
        let (tx, rx) = mpsc::channel();
        service.submit(
            request(random_pins(3, 8), None),
            Box::new(move |r| tx.send(r).unwrap()),
        );
        rx.recv_timeout(Duration::from_secs(60)).unwrap()
    };
    let under_faults = route();
    assert_eq!(
        under_faults.get("fidelity").and_then(Json::as_str),
        Some("moment")
    );
    let injected_before = service.faults_injected();
    assert!(injected_before > 0);

    service.set_fault_plan(None);
    let healthy = route();
    assert_eq!(
        healthy.get("fidelity").and_then(Json::as_str),
        Some("transient-fast"),
        "{healthy}"
    );
    assert_eq!(healthy.get("degraded"), Some(&Json::Bool(false)));
    // The retired plan's injections stay in the monotone total.
    assert_eq!(service.faults_injected(), injected_before);
    service.shutdown();
}

#[test]
fn expired_deadline_with_degradation_serves_the_tree_floor() {
    // No faults here — the pressure is purely the deadline.
    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let (tx, rx) = mpsc::channel();
    let mut req = request(random_pins(11, 16), Some(Duration::from_millis(1)));
    req.oracle = OracleKind::Transient;
    service.submit(req, Box::new(move |r| tx.send(r).unwrap()));
    let response = rx.recv_timeout(Duration::from_secs(60)).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
    let fidelity = response.get("fidelity").and_then(Json::as_str).unwrap();
    assert!(
        fidelity == "tree" || fidelity == "moment",
        "1 ms budget should force a low rung: {response}"
    );
    assert_eq!(response.get("degraded"), Some(&Json::Bool(true)));
    assert_eq!(
        service
            .stats_json()
            .get("deadline_expired")
            .and_then(Json::as_f64),
        Some(0.0),
        "degradation replaced the deadline error"
    );
    service.shutdown();
}
