//! Service-level behavior: caching, deadlines, backpressure, drain.

use std::sync::mpsc;
use std::time::Duration;

use ntr_geom::{Layout, NetGenerator, Point};
use ntr_server::json::Json;
use ntr_server::proto::{Algorithm, OracleKind, RouteRequest};
use ntr_server::service::{Service, ServiceConfig};

fn request(pins: Vec<Point>, algorithm: Algorithm, oracle: OracleKind) -> RouteRequest {
    RouteRequest {
        id: None,
        algorithm,
        oracle,
        pins,
        deadline: None,
        max_added_edges: 0,
        use_cache: true,
        retries: 2,
        degrade: true,
        candidates: ntr_core::CandidateGen::Exhaustive,
    }
}

fn random_pins(seed: u64, size: usize) -> Vec<Point> {
    NetGenerator::new(Layout::date94(), seed)
        .random_net(size)
        .unwrap()
        .pins()
        .to_vec()
}

fn route(service: &Service, req: RouteRequest) -> Json {
    let (tx, rx) = mpsc::channel();
    service.submit(req, Box::new(move |r| tx.send(r).unwrap()));
    rx.recv_timeout(Duration::from_secs(120)).unwrap()
}

#[test]
fn cached_result_equals_freshly_routed_across_seeds() {
    let service = Service::start(&ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    for seed in 1..=8u64 {
        let pins = random_pins(seed, 9);
        let fresh = route(
            &service,
            request(pins.clone(), Algorithm::Ldrg, OracleKind::Moment),
        );
        assert_eq!(
            fresh.get("ok"),
            Some(&Json::Bool(true)),
            "seed {seed}: {fresh}"
        );
        assert_eq!(fresh.get("cached"), Some(&Json::Bool(false)));

        // Same net with the sink order permuted must hit the cache and
        // report the identical routing.
        let mut permuted = pins.clone();
        permuted[1..].reverse();
        let cached = route(
            &service,
            request(permuted, Algorithm::Ldrg, OracleKind::Moment),
        );
        assert_eq!(cached.get("cached"), Some(&Json::Bool(true)), "seed {seed}");
        for field in [
            "delay_ns",
            "initial_delay_ns",
            "cost_um",
            "edges",
            "added_edges",
        ] {
            assert_eq!(
                cached.get(field),
                fresh.get(field),
                "seed {seed}: cached {field} differs from fresh"
            );
        }
    }
    let stats = service.stats_json();
    assert_eq!(stats.get("cache_hits").and_then(Json::as_f64), Some(8.0));
    assert_eq!(stats.get("cache_misses").and_then(Json::as_f64), Some(8.0));
    service.shutdown();
}

#[test]
fn cache_opt_out_always_routes() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let pins = random_pins(42, 6);
    let mut req = request(pins, Algorithm::Ldrg, OracleKind::Moment);
    req.use_cache = false;
    let first = route(&service, req.clone());
    let second = route(&service, req);
    assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
    assert_eq!(second.get("cached"), Some(&Json::Bool(false)));
    let stats = service.stats_json();
    assert_eq!(stats.get("cache_hits").and_then(Json::as_f64), Some(0.0));
    service.shutdown();
}

#[test]
fn one_ms_deadline_on_a_large_net_reports_deadline() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    // A 28-pin net under the transient oracle takes far longer than 1 ms
    // to sweep; with degradation off the deadline must cut it off, not
    // block the queue. (With degrade on — the default — the same request
    // would answer at a lower fidelity; see tests/chaos.rs.)
    let mut req = request(random_pins(7, 28), Algorithm::Ldrg, OracleKind::Transient);
    req.deadline = Some(Duration::from_millis(1));
    req.degrade = false;
    let response = route(&service, req);
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{response}");
    assert_eq!(
        response.get("error").and_then(Json::as_str),
        Some("deadline"),
        "{response}"
    );
    let stats = service.stats_json();
    assert_eq!(
        stats.get("deadline_expired").and_then(Json::as_f64),
        Some(1.0)
    );
    service.shutdown();
}

#[test]
fn full_queue_answers_overloaded() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        queue_depth: 1,
        cache_capacity: 0,
        ..ServiceConfig::default()
    });
    let (tx, rx) = mpsc::channel();
    // Slow transient-oracle requests through a 1-deep queue with 1
    // worker: at least one of a burst must be rejected with backpressure.
    for seed in 0..6u64 {
        let tx = tx.clone();
        service.submit(
            request(
                random_pins(seed + 100, 16),
                Algorithm::Ldrg,
                OracleKind::TransientFast,
            ),
            Box::new(move |r| tx.send(r).unwrap()),
        );
    }
    drop(tx);
    let responses: Vec<Json> = rx.iter().collect();
    assert_eq!(responses.len(), 6, "every submit answers exactly once");
    let overloaded = responses
        .iter()
        .filter(|r| r.get("error").and_then(Json::as_str) == Some("overloaded"))
        .count();
    let ok = responses
        .iter()
        .filter(|r| r.get("ok") == Some(&Json::Bool(true)))
        .count();
    assert!(overloaded >= 1, "burst should trip backpressure");
    assert!(ok >= 1, "accepted work still completes");
    assert_eq!(
        service
            .stats_json()
            .get("overloaded")
            .and_then(Json::as_f64),
        Some(overloaded as f64)
    );
    service.shutdown();
}

#[test]
fn concurrent_duplicates_coalesce_onto_one_route() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    // Submit the same (slow) net three times back-to-back: the first is
    // routed, the two duplicates attach to it rather than routing again.
    let pins = random_pins(77, 16);
    let (tx, rx) = mpsc::channel();
    for _ in 0..3 {
        let tx = tx.clone();
        service.submit(
            request(pins.clone(), Algorithm::Ldrg, OracleKind::TransientFast),
            Box::new(move |r| tx.send(r).unwrap()),
        );
    }
    drop(tx);
    let responses: Vec<Json> = rx.iter().collect();
    assert_eq!(responses.len(), 3);
    assert!(responses
        .iter()
        .all(|r| r.get("ok") == Some(&Json::Bool(true))));
    let routed = responses
        .iter()
        .filter(|r| r.get("cached") == Some(&Json::Bool(false)))
        .count();
    assert_eq!(routed, 1, "exactly one response carries a fresh route");
    let stats = service.stats_json();
    assert_eq!(stats.get("coalesced").and_then(Json::as_f64), Some(2.0));
    assert_eq!(stats.get("completed").and_then(Json::as_f64), Some(3.0));
    // All three report the identical routing.
    for field in ["delay_ns", "cost_um", "edges"] {
        assert!(
            responses
                .windows(2)
                .all(|w| w[0].get(field) == w[1].get(field)),
            "{field} differs between coalesced responses"
        );
    }
    service.shutdown();
}

#[test]
fn shutdown_drains_accepted_work() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let (tx, rx) = mpsc::channel();
    for seed in 0..4u64 {
        let tx = tx.clone();
        service.submit(
            request(
                random_pins(seed + 200, 8),
                Algorithm::H1,
                OracleKind::Moment,
            ),
            Box::new(move |r| tx.send(r).unwrap()),
        );
    }
    drop(tx);
    service.shutdown(); // must block until all four are answered
    let responses: Vec<Json> = rx.try_iter().collect();
    assert_eq!(responses.len(), 4);
    assert!(responses
        .iter()
        .all(|r| r.get("ok") == Some(&Json::Bool(true))));
}

#[test]
fn degenerate_net_is_a_route_error_not_a_crash() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    // All pins coincide: dedupe leaves one pin, which cannot be routed.
    let p = Point::new(5.0, 5.0);
    let response = route(
        &service,
        request(vec![p, p, p], Algorithm::Ldrg, OracleKind::Moment),
    );
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(response.get("error").and_then(Json::as_str), Some("route"));
    service.shutdown();
}
