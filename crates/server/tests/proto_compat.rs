//! Protocol v1/v2 compatibility: every v1 flat-layout request must parse
//! to exactly the same `RouteRequest` as its v2 grouped-layout spelling,
//! and v2 responses must keep the fields v1 clients read.

use ntr_server::json::Json;
use ntr_server::proto::{parse_request, Request, RouteRequest};

fn parse(line: &str) -> RouteRequest {
    let doc = Json::parse(line).unwrap_or_else(|e| panic!("bad test JSON {line:?}: {e}"));
    match parse_request(&doc) {
        Ok(Request::Route(req)) => req,
        other => panic!("{line:?} parsed to {other:?}"),
    }
}

/// (v1 flat spelling, v2 grouped spelling) pairs that must be identical
/// after parsing.
const EQUIVALENT: &[(&str, &str)] = &[
    (
        r#"{"op":"route","pins":[[0,0],[3000,0],[0,4000]]}"#,
        r#"{"op":"route","params":{},"budget":{},"pins":[[0,0],[3000,0],[0,4000]]}"#,
    ),
    (
        r#"{"op":"route","id":7,"algorithm":"h1","oracle":"transient-fast","deadline_ms":250,"max_added_edges":2,"cache":false,"pins":[[0,0],[5,5]]}"#,
        r#"{"op":"route","id":7,"algorithm":"h1",
            "params":{"oracle":"transient-fast","max_added_edges":2,"cache":false},
            "budget":{"deadline_ms":250},
            "pins":[[0,0],[5,5]]}"#,
    ),
    (
        r#"{"op":"route","algorithm":"ert-ldrg","oracle":"moment","pins":[[0,0],[9,9],[2,7]]}"#,
        r#"{"op":"route","algorithm":"ert-ldrg","params":{"oracle":"moment"},"pins":[[0,0],[9,9],[2,7]]}"#,
    ),
];

#[test]
fn v1_and_v2_spellings_parse_identically() {
    for (v1, v2) in EQUIVALENT {
        assert_eq!(parse(v1), parse(v2), "v1 {v1:?} != v2 {v2:?}");
    }
}

#[test]
fn v1_requests_get_the_resilience_defaults() {
    let req = parse(r#"{"op":"route","pins":[[0,0],[3000,0]]}"#);
    assert_eq!(req.retries, 2);
    assert!(req.degrade);
}

#[test]
fn v2_budget_fields_are_not_readable_from_v1_positions_only() {
    // budget.* wins over a stale top-level duplicate — a v2 client that
    // sets both must get the grouped value.
    let grouped = parse(
        r#"{"op":"route","deadline_ms":999,"budget":{"deadline_ms":10,"retries":5,"degrade":false},"pins":[[0,0],[1,1]]}"#,
    );
    assert_eq!(grouped.deadline, Some(std::time::Duration::from_millis(10)));
    assert_eq!(grouped.retries, 5);
    assert!(!grouped.degrade);
}

#[test]
fn round_trip_through_the_service_keeps_v1_response_fields() {
    use ntr_server::service::{Service, ServiceConfig};
    use std::sync::mpsc;

    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let run = |line: &str| {
        let (tx, rx) = mpsc::channel();
        service.submit(parse(line), Box::new(move |r| tx.send(r).unwrap()));
        rx.recv_timeout(std::time::Duration::from_secs(60)).unwrap()
    };
    let v1 = run(
        r#"{"op":"route","algorithm":"ldrg","oracle":"moment","cache":false,"pins":[[0,0],[3000,0],[0,4000]]}"#,
    );
    let v2 = run(
        r#"{"op":"route","algorithm":"ldrg","params":{"oracle":"moment","cache":false},"pins":[[0,0],[3000,0],[0,4000]]}"#,
    );
    // The routed result is identical either way...
    for field in ["ok", "delay_ns", "cost_um", "edges", "added_edges", "tree"] {
        assert_eq!(v1.get(field), v2.get(field), "{field} differs");
    }
    // ...and v2 responses carry the new resilience fields without
    // dropping anything a v1 client reads.
    for field in ["fidelity", "requested_fidelity", "degraded", "retries"] {
        assert!(v1.get(field).is_some(), "response lost {field}: {v1}");
    }
    assert_eq!(v1.get("fidelity").and_then(Json::as_str), Some("moment"));
    service.shutdown();
}
