//! Protocol v1/v2 compatibility: every v1 flat-layout request must parse
//! to exactly the same `RouteRequest` as its v2 grouped-layout spelling,
//! and v2 responses must keep the fields v1 clients read.

use ntr_server::json::Json;
use ntr_server::proto::{parse_request, Request, RouteRequest, SessionAction, SessionRequest};

fn parse(line: &str) -> RouteRequest {
    let doc = Json::parse(line).unwrap_or_else(|e| panic!("bad test JSON {line:?}: {e}"));
    match parse_request(&doc) {
        Ok(Request::Route(req)) => req,
        other => panic!("{line:?} parsed to {other:?}"),
    }
}

/// (v1 flat spelling, v2 grouped spelling) pairs that must be identical
/// after parsing.
const EQUIVALENT: &[(&str, &str)] = &[
    (
        r#"{"op":"route","pins":[[0,0],[3000,0],[0,4000]]}"#,
        r#"{"op":"route","params":{},"budget":{},"pins":[[0,0],[3000,0],[0,4000]]}"#,
    ),
    (
        r#"{"op":"route","id":7,"algorithm":"h1","oracle":"transient-fast","deadline_ms":250,"max_added_edges":2,"cache":false,"pins":[[0,0],[5,5]]}"#,
        r#"{"op":"route","id":7,"algorithm":"h1",
            "params":{"oracle":"transient-fast","max_added_edges":2,"cache":false},
            "budget":{"deadline_ms":250},
            "pins":[[0,0],[5,5]]}"#,
    ),
    (
        r#"{"op":"route","algorithm":"ert-ldrg","oracle":"moment","pins":[[0,0],[9,9],[2,7]]}"#,
        r#"{"op":"route","algorithm":"ert-ldrg","params":{"oracle":"moment"},"pins":[[0,0],[9,9],[2,7]]}"#,
    ),
];

#[test]
fn v1_and_v2_spellings_parse_identically() {
    for (v1, v2) in EQUIVALENT {
        assert_eq!(parse(v1), parse(v2), "v1 {v1:?} != v2 {v2:?}");
    }
}

#[test]
fn v1_requests_get_the_resilience_defaults() {
    let req = parse(r#"{"op":"route","pins":[[0,0],[3000,0]]}"#);
    assert_eq!(req.retries, 2);
    assert!(req.degrade);
}

#[test]
fn v2_budget_fields_are_not_readable_from_v1_positions_only() {
    // budget.* wins over a stale top-level duplicate — a v2 client that
    // sets both must get the grouped value.
    let grouped = parse(
        r#"{"op":"route","deadline_ms":999,"budget":{"deadline_ms":10,"retries":5,"degrade":false},"pins":[[0,0],[1,1]]}"#,
    );
    assert_eq!(grouped.deadline, Some(std::time::Duration::from_millis(10)));
    assert_eq!(grouped.retries, 5);
    assert!(!grouped.degrade);
}

fn parse_session(line: &str) -> SessionRequest {
    let doc = Json::parse(line).unwrap_or_else(|e| panic!("bad test JSON {line:?}: {e}"));
    match parse_request(&doc) {
        Ok(Request::Session(req)) => req,
        other => panic!("{line:?} parsed to {other:?}"),
    }
}

#[test]
fn session_create_accepts_both_net_spellings_and_grouped_params() {
    // session.create shares route's parser, so the v1 flat and v2
    // grouped spellings must keep parsing identically under it.
    let flat = parse_session(
        r#"{"op":"session.create","algorithm":"h1","oracle":"moment","max_added_edges":2,"pins":[[0,0],[5,5]]}"#,
    );
    let grouped = parse_session(
        r#"{"op":"session.create","algorithm":"h1",
            "params":{"oracle":"moment","max_added_edges":2},
            "net":{"source":[0,0],"sinks":[[5,5]]}}"#,
    );
    let (SessionAction::Create(a), SessionAction::Create(b)) = (flat.action, grouped.action) else {
        panic!("both spellings must parse to session.create");
    };
    assert_eq!(a, b);
}

#[test]
fn session_reroute_deadline_parses_flat_and_grouped() {
    let flat = parse_session(r#"{"op":"session.reroute","session":4,"deadline_ms":120}"#);
    let grouped =
        parse_session(r#"{"op":"session.reroute","session":4,"budget":{"deadline_ms":120}}"#);
    assert_eq!(flat, grouped);
    let SessionAction::Reroute { session, deadline } = flat.action else {
        panic!("expected session.reroute");
    };
    assert_eq!(session, 4);
    assert_eq!(deadline, Some(std::time::Duration::from_millis(120)));
    // budget.* wins over a stale top-level duplicate, like route.
    let both = parse_session(
        r#"{"op":"session.reroute","session":4,"deadline_ms":999,"budget":{"deadline_ms":10}}"#,
    );
    let SessionAction::Reroute { deadline, .. } = both.action else {
        panic!("expected session.reroute");
    };
    assert_eq!(deadline, Some(std::time::Duration::from_millis(10)));
}

#[test]
fn session_ops_round_trip_through_a_live_service() {
    use ntr_server::service::{Service, ServiceConfig};
    use std::sync::mpsc;

    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let run = |line: String| {
        let (tx, rx) = mpsc::channel();
        service.submit_session(parse_session(&line), Box::new(move |r| tx.send(r).unwrap()));
        rx.recv_timeout(std::time::Duration::from_secs(60)).unwrap()
    };
    let created = run(
        r#"{"op":"session.create","id":1,"algorithm":"ldrg","pins":[[0,0],[3000,0],[0,4000],[2500,2500]]}"#
            .to_owned(),
    );
    assert_eq!(created.get("ok"), Some(&Json::Bool(true)), "{created}");
    // Session responses keep the v1 route-body fields a client reads.
    for field in ["delay_ns", "cost_um", "edges", "added_edges", "tree"] {
        assert!(
            created.get(field).is_some(),
            "response lost {field}: {created}"
        );
    }
    let session = created.get("session").and_then(Json::as_f64).unwrap() as u64;
    let mutated = run(format!(
        r#"{{"op":"session.mutate","session":{session},"ops":[{{"op":"move_pin","pin":1,"to":[3040,25]}}]}}"#
    ));
    assert_eq!(mutated.get("ok"), Some(&Json::Bool(true)), "{mutated}");
    let rerouted = run(format!(
        r#"{{"op":"session.reroute","session":{session},"budget":{{"deadline_ms":60000}}}}"#
    ));
    assert_eq!(rerouted.get("ok"), Some(&Json::Bool(true)), "{rerouted}");
    assert!(rerouted.get("path").and_then(Json::as_str).is_some());
    let closed = run(format!(r#"{{"op":"session.close","session":{session}}}"#));
    assert_eq!(closed.get("ok"), Some(&Json::Bool(true)), "{closed}");
    service.shutdown();
}

#[test]
fn round_trip_through_the_service_keeps_v1_response_fields() {
    use ntr_server::service::{Service, ServiceConfig};
    use std::sync::mpsc;

    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let run = |line: &str| {
        let (tx, rx) = mpsc::channel();
        service.submit(parse(line), Box::new(move |r| tx.send(r).unwrap()));
        rx.recv_timeout(std::time::Duration::from_secs(60)).unwrap()
    };
    let v1 = run(
        r#"{"op":"route","algorithm":"ldrg","oracle":"moment","cache":false,"pins":[[0,0],[3000,0],[0,4000]]}"#,
    );
    let v2 = run(
        r#"{"op":"route","algorithm":"ldrg","params":{"oracle":"moment","cache":false},"pins":[[0,0],[3000,0],[0,4000]]}"#,
    );
    // The routed result is identical either way...
    for field in ["ok", "delay_ns", "cost_um", "edges", "added_edges", "tree"] {
        assert_eq!(v1.get(field), v2.get(field), "{field} differs");
    }
    // ...and v2 responses carry the new resilience fields without
    // dropping anything a v1 client reads.
    for field in ["fidelity", "requested_fidelity", "degraded", "retries"] {
        assert!(v1.get(field).is_some(), "response lost {field}: {v1}");
    }
    assert_eq!(v1.get("fidelity").and_then(Json::as_str), Some("moment"));
    service.shutdown();
}
