//! Flight-recorder acceptance: under a seeded fault plan, every
//! degraded / errored / fault-injected request appears in the journal
//! with a retained exemplar, and the three dump surfaces — the
//! `{"op":"journal"}` snapshot body, `GET /journal`, and the
//! post-mortem JSON-lines dump — agree on record counts.
//!
//! The journal is process-global, so this binary holds exactly one
//! test: parallel tests would interleave their events and make exact
//! count assertions meaningless.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use ntr_core::FaultPlan;
use ntr_geom::{Layout, NetGenerator, Point};
use ntr_obs::journal::check_journal_lines;
use ntr_obs::Journal;
use ntr_server::http::spawn_metrics_server;
use ntr_server::json::Json;
use ntr_server::proto::{Algorithm, OracleKind, RouteRequest};
use ntr_server::service::{Service, ServiceConfig};

fn request(pins: Vec<Point>) -> RouteRequest {
    RouteRequest {
        id: None,
        algorithm: Algorithm::Ldrg,
        oracle: OracleKind::TransientFast,
        pins,
        deadline: None,
        max_added_edges: 0,
        use_cache: false,
        retries: 2,
        degrade: true,
        candidates: ntr_core::CandidateGen::Exhaustive,
    }
}

fn random_pins(seed: u64, size: usize) -> Vec<Point> {
    NetGenerator::new(Layout::date94(), seed)
        .random_net(size)
        .unwrap()
        .pins()
        .to_vec()
}

/// One `GET path` against the observability endpoint; returns the body.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("headers then body");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    body.to_owned()
}

#[test]
fn flagged_requests_are_journaled_and_dump_surfaces_agree() {
    let service = Arc::new(Service::start(&ServiceConfig {
        workers: 2,
        faults: Some(Arc::new(
            FaultPlan::parse("seed=1994;fail=transient:1.0").unwrap(),
        )),
        ..ServiceConfig::default()
    }));
    const N: u64 = 8;
    let (tx, rx) = mpsc::channel();
    for seed in 0..N {
        let tx = tx.clone();
        service.submit(
            request(random_pins(seed, 8)),
            Box::new(move |r| tx.send(r).unwrap()),
        );
    }
    // A net of one pin cannot be routed: a guaranteed route_error.
    let (etx, erx) = mpsc::channel();
    service.submit(
        request(vec![Point { x: 1.0, y: 1.0 }]),
        Box::new(move |r| etx.send(r).unwrap()),
    );
    let responses: Vec<Json> = rx.iter().take(N as usize).collect();
    let errored = erx.recv_timeout(Duration::from_secs(60)).unwrap();
    assert_eq!(errored.get("ok"), Some(&Json::Bool(false)), "{errored}");

    // The fault plan fails every transient call, so all N routed
    // responses are degraded (and fault-injected): all flagged.
    let mut flagged: Vec<(u64, bool)> = Vec::new(); // (trace, worker path)
    for r in &responses {
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
        assert_eq!(r.get("degraded"), Some(&Json::Bool(true)), "{r}");
        let trace = r.get("trace").and_then(Json::as_f64).unwrap() as u64;
        flagged.push((trace, true));
    }
    let errored_trace = errored.get("trace").and_then(Json::as_f64).unwrap() as u64;
    flagged.push((errored_trace, false));

    // Responses are journaled before they are delivered, so the
    // snapshot taken now must already hold every one of them.
    let snapshot = Journal::global().snapshot();
    for &(trace, via_worker) in &flagged {
        let event = snapshot
            .requests
            .iter()
            .find(|e| e.trace == trace)
            .unwrap_or_else(|| panic!("trace {trace} missing from the request journal"));
        assert!(
            event.outcome != "ok" || event.degradation_steps > 0 || event.injected_faults > 0,
            "trace {trace} journaled but not flagged: {event:?}"
        );
        let exemplar = snapshot
            .exemplars
            .iter()
            .find(|x| x.event.trace == trace)
            .unwrap_or_else(|| panic!("trace {trace} has no retained exemplar"));
        assert!(
            ["error", "degraded", "injected"].contains(&exemplar.reason),
            "trace {trace} kept for the wrong reason: {}",
            exemplar.reason
        );
        if via_worker {
            // Worker-path exemplars carry the full span trace of the
            // request, rooted at the server.request span.
            assert!(
                exemplar.spans.iter().any(|s| s.name == "server.request"),
                "trace {trace} exemplar lost its span capture"
            );
            assert!(
                exemplar.spans.iter().all(|s| s.trace == trace),
                "trace {trace} exemplar holds foreign spans"
            );
        }
    }
    // The fault plan forces LDRG to run at the moment rung; its
    // per-iteration telemetry must have reached the journal too.
    assert!(
        !snapshot.iterations.is_empty(),
        "no LDRG iteration events journaled"
    );

    // Surface 1: the `{"op":"journal"}` body is the snapshot object.
    let body = snapshot.to_json();
    let count = |k: &str| body.get(k).and_then(Json::as_f64).unwrap() as usize;
    assert_eq!(count("requests"), snapshot.requests.len());

    // Surface 2: GET /journal serves the same records as JSON-lines
    // that pass the strict checker.
    let (addr, _http) = spawn_metrics_server("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let over_http = check_journal_lines(&http_get(addr, "/journal")).unwrap();

    // Surface 3: the post-mortem dump is the same JSON-lines writer
    // `ntr-serve --journal-out` invokes at drain or panic.
    let dump_path =
        std::env::temp_dir().join(format!("ntr-journal-test-{}.jsonl", std::process::id()));
    std::fs::write(&dump_path, Journal::global().snapshot().to_json_lines()).unwrap();
    let dumped = check_journal_lines(&std::fs::read_to_string(&dump_path).unwrap()).unwrap();
    let _ = std::fs::remove_file(&dump_path);

    // All work finished before the first snapshot, so the three
    // surfaces saw the identical journal.
    for (label, counts) in [("GET /journal", over_http), ("post-mortem dump", dumped)] {
        assert_eq!(
            counts.requests,
            count("requests"),
            "{label} request count disagrees with the op body"
        );
        assert_eq!(counts.iterations, count("iterations"), "{label}");
        assert_eq!(counts.exemplars, count("exemplars"), "{label}");
    }
    service.shutdown();
}
