//! Metrics and tracing integration: the in-process `GET /metrics` HTTP
//! responder (plus its `/statusz` and `/journal` siblings), the
//! `{"op":"metrics"}` protocol op, and trace ids in responses — each
//! validated with the in-repo exposition / journal checkers.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use ntr_geom::Point;
use ntr_obs::prometheus::check_exposition;
use ntr_server::http::{spawn_metrics_server, METRICS_CONTENT_TYPE};
use ntr_server::proto::RouteRequest;
use ntr_server::service::{Service, ServiceConfig};
use ntr_server::Json;

fn route_once(service: &Service) -> Json {
    let (tx, rx) = mpsc::channel();
    service.submit(
        RouteRequest {
            id: Some(Json::Num(1.0)),
            algorithm: ntr_server::Algorithm::Ldrg,
            oracle: ntr_server::OracleKind::Moment,
            pins: vec![
                Point::new(0.0, 0.0),
                Point::new(3000.0, 0.0),
                Point::new(0.0, 4000.0),
            ],
            deadline: None,
            max_added_edges: 0,
            use_cache: true,
            retries: 2,
            degrade: true,
            candidates: ntr_core::CandidateGen::Exhaustive,
        },
        Box::new(move |response| tx.send(response).unwrap()),
    );
    rx.recv_timeout(Duration::from_secs(60))
        .expect("a response")
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (head.to_owned(), body.to_owned())
}

#[test]
fn http_metrics_scrape_is_valid_exposition() {
    let service = Arc::new(Service::start(&ServiceConfig {
        workers: 1,
        ..Default::default()
    }));
    let (addr, _handle) =
        spawn_metrics_server("127.0.0.1:0", Arc::clone(&service)).expect("bind port 0");

    let response = route_once(&service);
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
    let trace = response.get("trace").and_then(Json::as_f64).unwrap();
    assert!(trace >= 1.0, "trace id assigned at submission: {response}");

    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains(METRICS_CONTENT_TYPE), "{head}");
    check_exposition(&body).unwrap();
    assert!(body.contains("ntr_requests_received_total 1"), "{body}");
    assert!(body.contains("ntr_requests_completed_total 1"), "{body}");
    assert!(body.contains("# TYPE ntr_queue_depth gauge"), "{body}");
    assert!(
        body.contains("# TYPE ntr_inflight_requests gauge"),
        "{body}"
    );
    // Nothing is in flight after the response arrived.
    assert!(body.contains("ntr_inflight_requests 0"), "{body}");
    assert!(body.contains("ntr_request_latency_us_count 1"), "{body}");

    // Anything else 404s; only GET is allowed.
    let (head, _) = http_get(addr, "/");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    service.shutdown();
}

#[test]
fn statusz_and_journal_are_served_over_http() {
    let service = Arc::new(Service::start(&ServiceConfig {
        workers: 1,
        ..Default::default()
    }));
    let (addr, _handle) =
        spawn_metrics_server("127.0.0.1:0", Arc::clone(&service)).expect("bind port 0");
    let response = route_once(&service);
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");

    let (head, dashboard) = http_get(addr, "/statusz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("text/html"), "{head}");
    for needle in ["sliding window", "cache hit", "flight recorder"] {
        assert!(dashboard.contains(needle), "statusz missing {needle:?}");
    }

    let (head, journal) = http_get(addr, "/journal");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("application/x-ndjson"), "{head}");
    let counts = ntr_obs::journal::check_journal_lines(&journal).unwrap();
    // The journal is process-global and other tests in this binary
    // route too, so only a lower bound is exact here.
    assert!(counts.requests >= 1, "no request events in {journal}");

    service.shutdown();
}

#[test]
fn tsdb_alertz_and_profilez_are_served_over_http() {
    let service = Arc::new(Service::start(&ServiceConfig {
        workers: 1,
        obs_tick: Duration::from_millis(20),
        ..Default::default()
    }));
    let (addr, _handle) =
        spawn_metrics_server("127.0.0.1:0", Arc::clone(&service)).expect("bind port 0");
    let response = route_once(&service);
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
    // Give the obs ticker a couple of cycles to snapshot the registry.
    std::thread::sleep(Duration::from_millis(120));

    let (head, body) = http_get(addr, "/tsdb?metric=ntr_requests_completed_total&res=1");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("application/json"), "{head}");
    let points = ntr_obs::tsdb::check_query_json(&body).unwrap();
    assert!(points >= 1, "no points in {body}");

    // No metric: the series-listing form.
    let (head, listing) = http_get(addr, "/tsdb");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    ntr_obs::tsdb::check_query_json(&listing).unwrap();
    assert!(
        listing.contains("ntr_requests_completed_total"),
        "{listing}"
    );

    let (head, alerts) = http_get(addr, "/alertz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("application/json"), "{head}");
    let n = ntr_obs::slo::check_alerts_json(&alerts).unwrap();
    assert!(n >= 1, "default SLOs missing from {alerts}");

    let (head, folded) = http_get(addr, "/profilez");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    // The sampler may or may not be running under `cargo test`; the
    // body must be valid folded-stack text either way (possibly empty).
    ntr_obs::profile::check_folded(&folded).unwrap();

    service.shutdown();
}

#[test]
fn distinct_requests_get_distinct_trace_ids() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..Default::default()
    });
    let a = route_once(&service);
    let b = route_once(&service); // cache hit — still gets its own trace
    assert_eq!(b.get("cached"), Some(&Json::Bool(true)), "{b}");
    let ta = a.get("trace").and_then(Json::as_f64).unwrap();
    let tb = b.get("trace").and_then(Json::as_f64).unwrap();
    assert_ne!(ta, tb);
    service.shutdown();
}

#[test]
fn metrics_op_over_stdio_returns_valid_exposition() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ntr-serve"))
        .args(["--stdio", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("ntr-serve spawns");
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let mut ask = |line: &str| -> Json {
        writeln!(stdin, "{line}").unwrap();
        let reply = lines.next().expect("a response line").unwrap();
        Json::parse(&reply).unwrap_or_else(|e| panic!("bad response {reply:?}: {e}"))
    };

    let routed = ask(r#"{"op":"route","id":1,"pins":[[0,0],[2500,1500]]}"#);
    assert_eq!(routed.get("ok"), Some(&Json::Bool(true)), "{routed}");

    let metrics = ask(r#"{"op":"metrics"}"#);
    assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(metrics.get("op").and_then(Json::as_str), Some("metrics"));
    let body = metrics.get("body").and_then(Json::as_str).unwrap();
    check_exposition(body).unwrap();
    assert!(body.contains("ntr_requests_received_total 1"), "{body}");

    let bye = ask(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("op").and_then(Json::as_str), Some("shutdown"));
    drop(stdin);
    assert!(child.wait().unwrap().success());
}
