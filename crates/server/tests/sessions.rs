//! Session-op behavior at the service layer: the create → mutate →
//! reroute → close lifecycle, the structured `session` error, cache
//! exclusion, and TTL eviction.

use std::sync::mpsc;
use std::time::Duration;

use ntr_geom::{Layout, NetGenerator, Point};
use ntr_server::json::Json;
use ntr_server::proto::{Algorithm, OracleKind, RouteRequest, SessionAction, SessionRequest};
use ntr_server::service::{Service, ServiceConfig};

fn request(pins: Vec<Point>) -> RouteRequest {
    RouteRequest {
        id: None,
        algorithm: Algorithm::Ldrg,
        oracle: OracleKind::Moment,
        pins,
        deadline: None,
        max_added_edges: 0,
        use_cache: true,
        retries: 2,
        degrade: true,
        candidates: ntr_core::CandidateGen::Exhaustive,
    }
}

fn random_pins(seed: u64, size: usize) -> Vec<Point> {
    NetGenerator::new(Layout::date94(), seed)
        .random_net(size)
        .unwrap()
        .pins()
        .to_vec()
}

fn submit_session(service: &Service, action: SessionAction) -> Json {
    let (tx, rx) = mpsc::channel();
    service.submit_session(
        SessionRequest { id: None, action },
        Box::new(move |r| tx.send(r).unwrap()),
    );
    rx.recv_timeout(Duration::from_secs(120)).unwrap()
}

fn route(service: &Service, req: RouteRequest) -> Json {
    let (tx, rx) = mpsc::channel();
    service.submit(req, Box::new(move |r| tx.send(r).unwrap()));
    rx.recv_timeout(Duration::from_secs(120)).unwrap()
}

fn handle_of(response: &Json) -> u64 {
    response.get("session").and_then(Json::as_f64).unwrap() as u64
}

fn session_stat(service: &Service, field: &str) -> f64 {
    service
        .stats_json()
        .get("sessions")
        .and_then(|s| s.get(field))
        .and_then(Json::as_f64)
        .unwrap()
}

#[test]
fn lifecycle_create_mutate_reroute_close() {
    let service = Service::start(&ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let pins = random_pins(11, 9);
    let created = submit_session(&service, SessionAction::Create(request(pins.clone())));
    assert_eq!(created.get("ok"), Some(&Json::Bool(true)), "{created}");
    assert_eq!(
        created.get("fidelity").and_then(Json::as_str),
        Some("moment"),
        "sessions always serve at moment fidelity"
    );
    let handle = handle_of(&created);
    assert_eq!(service.session_count(), 1);

    // A quiescent reroute replays the cached outcome.
    let quiet = submit_session(
        &service,
        SessionAction::Reroute {
            session: handle,
            deadline: None,
        },
    );
    assert_eq!(quiet.get("ok"), Some(&Json::Bool(true)), "{quiet}");
    assert_eq!(quiet.get("path").and_then(Json::as_str), Some("quiescent"));
    assert_eq!(quiet.get("delay_ns"), created.get("delay_ns"));

    // One pin move reroutes through the same-pattern refactor path.
    let mutated = submit_session(
        &service,
        SessionAction::Mutate {
            session: handle,
            ops: vec![ntr_core::DeltaOp::MovePin {
                pin: 2,
                to: Point::new(pins[2].x + 40.0, pins[2].y - 25.0),
            }],
        },
    );
    assert_eq!(mutated.get("ok"), Some(&Json::Bool(true)), "{mutated}");
    assert_eq!(mutated.get("applied").and_then(Json::as_f64), Some(1.0));
    assert_eq!(mutated.get("pending").and_then(Json::as_f64), Some(1.0));
    let rerouted = submit_session(
        &service,
        SessionAction::Reroute {
            session: handle,
            deadline: None,
        },
    );
    assert_eq!(rerouted.get("ok"), Some(&Json::Bool(true)), "{rerouted}");
    assert_eq!(
        rerouted.get("path").and_then(Json::as_str),
        Some("refactor"),
        "{rerouted}"
    );

    // Adding a pin grows the matrix pattern: scratch.
    let added = submit_session(
        &service,
        SessionAction::Mutate {
            session: handle,
            ops: vec![ntr_core::DeltaOp::AddPin(Point::new(4321.0, 1234.0))],
        },
    );
    assert_eq!(added.get("ok"), Some(&Json::Bool(true)), "{added}");
    let scratched = submit_session(
        &service,
        SessionAction::Reroute {
            session: handle,
            deadline: None,
        },
    );
    assert_eq!(
        scratched.get("path").and_then(Json::as_str),
        Some("scratch"),
        "{scratched}"
    );
    assert_eq!(scratched.get("pins").and_then(Json::as_f64), Some(10.0));

    let closed = submit_session(&service, SessionAction::Close { session: handle });
    assert_eq!(closed.get("ok"), Some(&Json::Bool(true)), "{closed}");
    assert_eq!(closed.get("mutations").and_then(Json::as_f64), Some(2.0));
    assert_eq!(closed.get("reroutes").and_then(Json::as_f64), Some(3.0));
    assert_eq!(closed.get("quiescent").and_then(Json::as_f64), Some(1.0));
    assert_eq!(closed.get("refactor").and_then(Json::as_f64), Some(1.0));
    assert_eq!(closed.get("scratch").and_then(Json::as_f64), Some(1.0));
    assert_eq!(service.session_count(), 0);

    assert_eq!(session_stat(&service, "created"), 1.0);
    assert_eq!(session_stat(&service, "closed"), 1.0);
    assert_eq!(session_stat(&service, "mutations"), 2.0);
    assert_eq!(session_stat(&service, "reroutes_quiescent"), 1.0);
    assert_eq!(session_stat(&service, "reroutes_refactor"), 1.0);
    assert_eq!(session_stat(&service, "reroutes_scratch"), 1.0);
    assert_eq!(session_stat(&service, "errors"), 0.0);
    service.shutdown();
}

#[test]
fn unknown_session_is_a_structured_error_not_a_crash() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    for action in [
        SessionAction::Mutate {
            session: 999,
            ops: vec![ntr_core::DeltaOp::AddPin(Point::new(1.0, 1.0))],
        },
        SessionAction::Reroute {
            session: 999,
            deadline: None,
        },
        SessionAction::Close { session: 999 },
    ] {
        let response = submit_session(&service, action);
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{response}");
        assert_eq!(
            response.get("error").and_then(Json::as_str),
            Some("session"),
            "{response}"
        );
    }
    assert_eq!(session_stat(&service, "errors"), 3.0);
    service.shutdown();
}

#[test]
fn rejected_delta_stops_the_batch_but_keeps_earlier_ops() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let created = submit_session(&service, SessionAction::Create(request(random_pins(3, 7))));
    let handle = handle_of(&created);
    // Second op is invalid (source removal); the first stays applied.
    let response = submit_session(
        &service,
        SessionAction::Mutate {
            session: handle,
            ops: vec![
                ntr_core::DeltaOp::AddPin(Point::new(777.0, 777.0)),
                ntr_core::DeltaOp::RemovePin { pin: 0 },
                ntr_core::DeltaOp::AddPin(Point::new(888.0, 888.0)),
            ],
        },
    );
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{response}");
    assert_eq!(
        response.get("error").and_then(Json::as_str),
        Some("session")
    );
    assert_eq!(response.get("applied").and_then(Json::as_f64), Some(1.0));
    assert_eq!(response.get("pending").and_then(Json::as_f64), Some(1.0));
    assert_eq!(session_stat(&service, "mutations"), 1.0);
    assert_eq!(session_stat(&service, "errors"), 1.0);
    // The session survives its rejected batch: the applied delta routes.
    let rerouted = submit_session(
        &service,
        SessionAction::Reroute {
            session: handle,
            deadline: None,
        },
    );
    assert_eq!(rerouted.get("ok"), Some(&Json::Bool(true)), "{rerouted}");
    assert_eq!(rerouted.get("pins").and_then(Json::as_f64), Some(8.0));
    service.shutdown();
}

#[test]
fn session_responses_bypass_the_result_cache() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let pins = random_pins(21, 8);
    let created = submit_session(&service, SessionAction::Create(request(pins.clone())));
    let handle = handle_of(&created);
    let moved = Point::new(pins[3].x + 30.0, pins[3].y + 30.0);
    submit_session(
        &service,
        SessionAction::Mutate {
            session: handle,
            ops: vec![ntr_core::DeltaOp::MovePin { pin: 3, to: moved }],
        },
    );
    submit_session(
        &service,
        SessionAction::Reroute {
            session: handle,
            deadline: None,
        },
    );
    assert_eq!(
        service.cache_len(),
        0,
        "session responses must never enter the LRU"
    );
    submit_session(&service, SessionAction::Close { session: handle });

    // After close, the identical full-net request is a miss (nothing
    // was cached by the session) and then a hit (route caches normally).
    let mut full = pins;
    full[3] = moved;
    let first = route(&service, request(full.clone()));
    assert_eq!(first.get("cached"), Some(&Json::Bool(false)), "{first}");
    let second = route(&service, request(full));
    assert_eq!(second.get("cached"), Some(&Json::Bool(true)), "{second}");
    assert_eq!(service.cache_len(), 1);
    let stats = service.stats_json();
    assert_eq!(stats.get("cache_misses").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("cache_hits").and_then(Json::as_f64), Some(1.0));
    service.shutdown();
}

#[test]
fn incremental_reroute_matches_the_stateless_route_of_the_same_net() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    // One pin move served by the refactor path must agree with what a
    // stateless route of the mutated net reports, to float tolerance.
    let pins = random_pins(31, 9);
    let created = submit_session(&service, SessionAction::Create(request(pins.clone())));
    let handle = handle_of(&created);
    let moved = Point::new(pins[4].x - 35.0, pins[4].y + 15.0);
    submit_session(
        &service,
        SessionAction::Mutate {
            session: handle,
            ops: vec![ntr_core::DeltaOp::MovePin { pin: 4, to: moved }],
        },
    );
    let incremental = submit_session(
        &service,
        SessionAction::Reroute {
            session: handle,
            deadline: None,
        },
    );
    assert_eq!(
        incremental.get("ok"),
        Some(&Json::Bool(true)),
        "{incremental}"
    );
    submit_session(&service, SessionAction::Close { session: handle });
    let mut full = pins;
    full[4] = moved;
    let mut req = request(full);
    req.use_cache = false;
    let stateless = route(&service, req);
    let inc = incremental.get("delay_ns").and_then(Json::as_f64).unwrap();
    let scratch = stateless.get("delay_ns").and_then(Json::as_f64).unwrap();
    // The refactor path reuses the previous topology (it does not
    // re-run the LDRG search), so delays agree only when the search
    // would not have changed the topology; both must at least be
    // finite, positive, and within the same ballpark.
    assert!(inc.is_finite() && inc > 0.0, "{incremental}");
    assert!(scratch.is_finite() && scratch > 0.0, "{stateless}");
    assert!(
        inc <= scratch * 1.5 + 1e-9,
        "incremental delay {inc} wildly off stateless {scratch}"
    );
    service.shutdown();
}

#[test]
fn table_capacity_answers_the_session_error() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        session_capacity: 2,
        ..ServiceConfig::default()
    });
    let a = submit_session(&service, SessionAction::Create(request(random_pins(1, 6))));
    let b = submit_session(&service, SessionAction::Create(request(random_pins(2, 6))));
    assert_eq!(a.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(b.get("ok"), Some(&Json::Bool(true)));
    let full = submit_session(&service, SessionAction::Create(request(random_pins(3, 6))));
    assert_eq!(full.get("ok"), Some(&Json::Bool(false)), "{full}");
    assert_eq!(full.get("error").and_then(Json::as_str), Some("session"));
    assert_eq!(service.session_count(), 2);
    // Closing one frees a slot.
    submit_session(
        &service,
        SessionAction::Close {
            session: handle_of(&a),
        },
    );
    let again = submit_session(&service, SessionAction::Create(request(random_pins(3, 6))));
    assert_eq!(again.get("ok"), Some(&Json::Bool(true)), "{again}");
    service.shutdown();
}

#[test]
fn idle_sessions_are_evicted_by_ttl() {
    let service = Service::start(&ServiceConfig {
        workers: 1,
        session_ttl: Duration::from_millis(30),
        obs_tick: Duration::from_millis(10),
        ..ServiceConfig::default()
    });
    let created = submit_session(&service, SessionAction::Create(request(random_pins(5, 6))));
    let handle = handle_of(&created);
    assert_eq!(service.session_count(), 1);
    // Wait out the TTL plus a few ticker beats.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.session_count() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        service.session_count(),
        0,
        "ticker should evict idle session"
    );
    assert_eq!(session_stat(&service, "evicted"), 1.0);
    let late = submit_session(
        &service,
        SessionAction::Reroute {
            session: handle,
            deadline: None,
        },
    );
    assert_eq!(late.get("error").and_then(Json::as_str), Some("session"));
    service.shutdown();
}
