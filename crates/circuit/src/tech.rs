/// Electrical parameters of an interconnect technology.
///
/// A passive parameter bundle: resistance in ohms, capacitance in farads,
/// inductance in henries, lengths in micrometers. The values of
/// [`Technology::date94`] reproduce Table 1 of the paper.
///
/// Wire width scaling (for the WSORG extension) follows the standard
/// first-order model: a wire of width multiplier `w` has resistance
/// `r/w` per unit length and (area-dominated) capacitance `c·w` per unit
/// length; inductance is treated as width-independent.
///
/// # Examples
///
/// ```
/// use ntr_circuit::Technology;
/// let tech = Technology::date94();
/// assert_eq!(tech.driver_resistance, 100.0);
/// // 1 mm of nominal wire:
/// assert!((tech.wire_resistance(1000.0, 1.0) - 30.0).abs() < 1e-12);
/// assert!((tech.wire_capacitance(1000.0, 1.0) - 0.352e-12).abs() < 1e-24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Output driver resistance at the net source, in Ω.
    pub driver_resistance: f64,
    /// Wire resistance per unit length, in Ω/µm.
    pub wire_resistance_per_um: f64,
    /// Wire capacitance per unit length, in F/µm.
    pub wire_capacitance_per_um: f64,
    /// Wire inductance per unit length, in H/µm.
    pub wire_inductance_per_um: f64,
    /// Loading capacitance at each sink pin, in F.
    pub sink_capacitance: f64,
    /// Supply/step voltage used for delay thresholds, in V.
    pub supply_voltage: f64,
}

impl Technology {
    /// The 0.8 µm CMOS parameters of the paper's Table 1.
    ///
    /// | parameter | value |
    /// |---|---|
    /// | driver resistance | 100 Ω |
    /// | wire resistance | 0.03 Ω/µm |
    /// | wire capacitance | 0.352 fF/µm |
    /// | wire inductance | 492 fH/µm |
    /// | sink loading capacitance | 15.3 fF |
    #[must_use]
    pub fn date94() -> Self {
        Self {
            driver_resistance: 100.0,
            wire_resistance_per_um: 0.03,
            wire_capacitance_per_um: 0.352e-15,
            wire_inductance_per_um: 492e-18,
            sink_capacitance: 15.3e-15,
            supply_voltage: 1.0,
        }
    }

    /// Total resistance of a wire of `length_um` and width multiplier
    /// `width`, in Ω.
    #[must_use]
    pub fn wire_resistance(&self, length_um: f64, width: f64) -> f64 {
        self.wire_resistance_per_um * length_um / width
    }

    /// Total capacitance of a wire of `length_um` and width multiplier
    /// `width`, in F.
    #[must_use]
    pub fn wire_capacitance(&self, length_um: f64, width: f64) -> f64 {
        self.wire_capacitance_per_um * length_um * width
    }

    /// Total inductance of a wire of `length_um`, in H (width-independent
    /// to first order).
    #[must_use]
    pub fn wire_inductance(&self, length_um: f64) -> f64 {
        self.wire_inductance_per_um * length_um
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::date94()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date94_matches_table_1() {
        let t = Technology::date94();
        assert_eq!(t.driver_resistance, 100.0);
        assert_eq!(t.wire_resistance_per_um, 0.03);
        assert_eq!(t.wire_capacitance_per_um, 0.352e-15);
        assert_eq!(t.wire_inductance_per_um, 492e-18);
        assert_eq!(t.sink_capacitance, 15.3e-15);
    }

    #[test]
    fn width_scales_r_down_and_c_up() {
        let t = Technology::date94();
        let r1 = t.wire_resistance(100.0, 1.0);
        let r2 = t.wire_resistance(100.0, 2.0);
        assert!((r2 - r1 / 2.0).abs() < 1e-12);
        let c1 = t.wire_capacitance(100.0, 1.0);
        let c2 = t.wire_capacitance(100.0, 2.0);
        assert!((c2 - 2.0 * c1).abs() < 1e-27);
    }

    #[test]
    fn default_is_date94() {
        assert_eq!(Technology::default(), Technology::date94());
    }
}
