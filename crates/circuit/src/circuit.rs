use std::error::Error;
use std::fmt;

/// A source waveform.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// A constant value.
    Dc(f64),
    /// An ideal step from 0 to `level` at `t = 0`.
    Step {
        /// Final level (V or A).
        level: f64,
    },
    /// A piecewise-linear waveform through `(time, value)` breakpoints
    /// (SPICE `PWL`); the value holds flat before the first and after the
    /// last breakpoint.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// The waveform value at time `t` (seconds).
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Step { level } => {
                if t >= 0.0 {
                    *level
                } else {
                    0.0
                }
            }
            Waveform::Pwl(points) => match points.as_slice() {
                [] => 0.0,
                [(_, v)] => *v,
                points => {
                    if t <= points[0].0 {
                        return points[0].1;
                    }
                    for pair in points.windows(2) {
                        let ((t0, v0), (t1, v1)) = (pair[0], pair[1]);
                        if t <= t1 {
                            if t1 <= t0 {
                                return v1;
                            }
                            return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                        }
                    }
                    points[points.len() - 1].1
                }
            },
        }
    }

    /// The steady-state (t → ∞) value.
    #[must_use]
    pub fn final_value(&self) -> f64 {
        match self {
            Waveform::Dc(v) | Waveform::Step { level: v } => *v,
            Waveform::Pwl(points) => points.last().map_or(0.0, |&(_, v)| v),
        }
    }
}

/// A circuit element between two nodes (node 0 is ground).
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// A resistor of `ohms` between `a` and `b`.
    Resistor {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Resistance in Ω (positive).
        ohms: f64,
    },
    /// A capacitor of `farads` between `a` and `b`.
    Capacitor {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Capacitance in F (positive).
        farads: f64,
    },
    /// An inductor of `henries` between `a` and `b`.
    Inductor {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Inductance in H (positive).
        henries: f64,
    },
    /// An independent voltage source driving `pos` relative to `neg`.
    VoltageSource {
        /// Positive terminal node.
        pos: usize,
        /// Negative terminal node.
        neg: usize,
        /// Source waveform.
        waveform: Waveform,
    },
    /// An independent current source pushing current out of `from` and
    /// into `into` (SPICE convention: positive current flows through the
    /// source from `from` to `into`).
    CurrentSource {
        /// Node the current leaves.
        from: usize,
        /// Node the current enters.
        into: usize,
        /// Source waveform (amperes).
        waveform: Waveform,
    },
}

/// Errors raised while assembling a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum BuildCircuitError {
    /// An element references a node that was never allocated.
    UnknownNode {
        /// The offending node index.
        node: usize,
        /// Number of allocated nodes (including ground).
        count: usize,
    },
    /// Element values must be positive and finite.
    InvalidValue {
        /// The rejected value.
        value: f64,
    },
    /// Both terminals of an element are the same node.
    ShortedElement {
        /// The node both terminals land on.
        node: usize,
    },
}

impl fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCircuitError::UnknownNode { node, count } => {
                write!(f, "node {node} does not exist (circuit has {count} nodes)")
            }
            BuildCircuitError::InvalidValue { value } => {
                write!(f, "element value must be positive and finite, got {value}")
            }
            BuildCircuitError::ShortedElement { node } => {
                write!(f, "element terminals must differ, both on node {node}")
            }
        }
    }
}

impl Error for BuildCircuitError {}

/// A linear circuit: nodes (0 = ground) plus R, C, L and voltage-source
/// elements.
///
/// Built by the extractor (see [`extract`](crate::extract)) and consumed by
/// the `ntr-spice` simulator.
///
/// # Examples
///
/// ```
/// use ntr_circuit::{Circuit, Waveform};
/// # fn main() -> Result<(), ntr_circuit::BuildCircuitError> {
/// let mut c = Circuit::new();
/// let n1 = c.add_node();
/// let n2 = c.add_node();
/// c.add_voltage_source(n1, Circuit::GROUND, Waveform::Step { level: 1.0 })?;
/// c.add_resistor(n1, n2, 100.0)?;
/// c.add_capacitor(n2, Circuit::GROUND, 1.0e-12)?;
/// assert_eq!(c.node_count(), 3);
/// assert_eq!(c.elements().len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    /// Number of nodes including ground.
    node_count: usize,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground node index.
    pub const GROUND: usize = 0;

    /// Creates an empty circuit containing only the ground node.
    #[must_use]
    pub fn new() -> Self {
        Self {
            node_count: 1,
            elements: Vec::new(),
        }
    }

    /// Allocates a new node and returns its index.
    pub fn add_node(&mut self) -> usize {
        let id = self.node_count;
        self.node_count += 1;
        id
    }

    /// Number of nodes, including ground.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The element list, in insertion order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable element access for in-crate value patching (extraction's
    /// incremental width rescaling). Kept crate-private so the public API
    /// cannot invalidate element invariants.
    pub(crate) fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    /// Number of voltage sources (each takes one MNA branch variable).
    #[must_use]
    pub fn voltage_source_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VoltageSource { .. }))
            .count()
    }

    /// Number of inductors (each takes one MNA branch variable).
    #[must_use]
    pub fn inductor_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Inductor { .. }))
            .count()
    }

    /// Sum of all capacitances to any node, in F.
    #[must_use]
    pub fn total_capacitance(&self) -> f64 {
        self.elements
            .iter()
            .filter_map(|e| match e {
                Element::Capacitor { farads, .. } => Some(*farads),
                _ => None,
            })
            .sum()
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError`] for unknown nodes, non-positive values
    /// or shorted terminals.
    pub fn add_resistor(&mut self, a: usize, b: usize, ohms: f64) -> Result<(), BuildCircuitError> {
        self.check_two_terminal(a, b, ohms)?;
        self.elements.push(Element::Resistor { a, b, ohms });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError`] for unknown nodes, non-positive values
    /// or shorted terminals.
    pub fn add_capacitor(
        &mut self,
        a: usize,
        b: usize,
        farads: f64,
    ) -> Result<(), BuildCircuitError> {
        self.check_two_terminal(a, b, farads)?;
        self.elements.push(Element::Capacitor { a, b, farads });
        Ok(())
    }

    /// Adds an inductor.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError`] for unknown nodes, non-positive values
    /// or shorted terminals.
    pub fn add_inductor(
        &mut self,
        a: usize,
        b: usize,
        henries: f64,
    ) -> Result<(), BuildCircuitError> {
        self.check_two_terminal(a, b, henries)?;
        self.elements.push(Element::Inductor { a, b, henries });
        Ok(())
    }

    /// Adds an independent voltage source.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError`] for unknown nodes or shorted terminals.
    pub fn add_voltage_source(
        &mut self,
        pos: usize,
        neg: usize,
        waveform: Waveform,
    ) -> Result<(), BuildCircuitError> {
        self.check_node(pos)?;
        self.check_node(neg)?;
        if pos == neg {
            return Err(BuildCircuitError::ShortedElement { node: pos });
        }
        self.elements
            .push(Element::VoltageSource { pos, neg, waveform });
        Ok(())
    }

    /// Adds an independent current source (no MNA branch variable; it
    /// contributes only to the right-hand side).
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError`] for unknown nodes or shorted terminals.
    pub fn add_current_source(
        &mut self,
        from: usize,
        into: usize,
        waveform: Waveform,
    ) -> Result<(), BuildCircuitError> {
        self.check_node(from)?;
        self.check_node(into)?;
        if from == into {
            return Err(BuildCircuitError::ShortedElement { node: from });
        }
        self.elements.push(Element::CurrentSource {
            from,
            into,
            waveform,
        });
        Ok(())
    }

    fn check_node(&self, n: usize) -> Result<(), BuildCircuitError> {
        if n < self.node_count {
            Ok(())
        } else {
            Err(BuildCircuitError::UnknownNode {
                node: n,
                count: self.node_count,
            })
        }
    }

    fn check_two_terminal(&self, a: usize, b: usize, value: f64) -> Result<(), BuildCircuitError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(BuildCircuitError::ShortedElement { node: a });
        }
        if !(value.is_finite() && value > 0.0) {
            return Err(BuildCircuitError::InvalidValue { value });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveform_values() {
        let step = Waveform::Step { level: 2.5 };
        assert_eq!(step.value_at(-1.0), 0.0);
        assert_eq!(step.value_at(0.0), 2.5);
        assert_eq!(step.final_value(), 2.5);
        assert_eq!(Waveform::Dc(1.0).value_at(-5.0), 1.0);
    }

    #[test]
    fn rc_circuit_assembles() {
        let mut c = Circuit::new();
        let n = c.add_node();
        c.add_voltage_source(n, Circuit::GROUND, Waveform::Step { level: 1.0 })
            .unwrap();
        let m = c.add_node();
        c.add_resistor(n, m, 50.0).unwrap();
        c.add_capacitor(m, Circuit::GROUND, 2.0e-12).unwrap();
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.voltage_source_count(), 1);
        assert_eq!(c.inductor_count(), 0);
        assert!((c.total_capacitance() - 2.0e-12).abs() < 1e-24);
    }

    #[test]
    fn invalid_elements_are_rejected() {
        let mut c = Circuit::new();
        let n = c.add_node();
        assert!(matches!(
            c.add_resistor(n, 9, 1.0),
            Err(BuildCircuitError::UnknownNode { node: 9, .. })
        ));
        assert!(matches!(
            c.add_resistor(n, n, 1.0),
            Err(BuildCircuitError::ShortedElement { .. })
        ));
        assert!(matches!(
            c.add_capacitor(n, Circuit::GROUND, -1.0),
            Err(BuildCircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            c.add_inductor(n, Circuit::GROUND, f64::INFINITY),
            Err(BuildCircuitError::InvalidValue { .. })
        ));
    }
}
