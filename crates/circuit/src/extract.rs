use std::error::Error;
use std::fmt;
use std::ops::Range;

use ntr_graph::{EdgeId, NodeId, RoutingGraph};

use crate::{BuildCircuitError, Circuit, Element, Technology, Waveform};

/// How wires are split into distributed π-segments.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Segmentation {
    /// A fixed number of segments per edge, regardless of length.
    PerEdge(usize),
    /// As many segments as needed so none exceeds the given length (µm).
    MaxLength(f64),
}

impl Segmentation {
    fn segments_for(&self, length_um: f64) -> usize {
        match *self {
            Segmentation::PerEdge(k) => k.max(1),
            Segmentation::MaxLength(max) => ((length_um / max).ceil() as usize).max(1),
        }
    }
}

/// Options controlling RC(L) extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractOptions {
    /// Wire segmentation policy. Default: 500 µm per segment, which keeps
    /// the distributed-line error on 10 mm nets under a percent while
    /// staying cheap to simulate.
    pub segmentation: Segmentation,
    /// Include the series wire inductance (RLC instead of RC). The paper's
    /// SPICE model lists inductance; at 0.8 µm dimensions its delay effect
    /// is small (see the `ablation_inductance` bench). Default: `false`.
    pub include_inductance: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        Self {
            segmentation: Segmentation::MaxLength(500.0),
            include_inductance: false,
        }
    }
}

/// Errors raised by extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ExtractError {
    /// The routing graph has no edges or unreachable pins; a meaningful
    /// circuit requires a spanning (connected) routing.
    Disconnected {
        /// Nodes reachable from the source.
        reachable: usize,
        /// Total nodes.
        total: usize,
    },
    /// Invalid segmentation parameter.
    InvalidSegmentation,
    /// Circuit assembly failed (propagated element error).
    Build(BuildCircuitError),
    /// A routing-graph node index outside the extracted graph.
    UnknownGraphNode {
        /// The offending node index.
        node: usize,
    },
    /// An edge id with no recorded element span in this extraction.
    UnknownEdge {
        /// The offending edge index.
        edge: usize,
    },
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Disconnected { reachable, total } => write!(
                f,
                "routing graph must span the net: {reachable} of {total} nodes reachable"
            ),
            ExtractError::InvalidSegmentation => {
                write!(f, "segmentation parameters must be positive")
            }
            ExtractError::Build(e) => write!(f, "circuit assembly failed: {e}"),
            ExtractError::UnknownGraphNode { node } => {
                write!(
                    f,
                    "routing-graph node {node} is not part of this extraction"
                )
            }
            ExtractError::UnknownEdge { edge } => {
                write!(
                    f,
                    "edge {edge} has no recorded element span in this extraction"
                )
            }
        }
    }
}

impl Error for ExtractError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExtractError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildCircuitError> for ExtractError {
    fn from(e: BuildCircuitError) -> Self {
        ExtractError::Build(e)
    }
}

/// The result of extracting a routing graph: the circuit plus the node
/// bookkeeping needed to interpret simulation results.
#[derive(Debug, Clone, PartialEq)]
pub struct Extracted {
    /// The assembled linear circuit.
    pub circuit: Circuit,
    /// Circuit node of the ideal step source (before the driver resistor).
    pub input_node: usize,
    /// Circuit node of each routing-graph node, indexed by
    /// [`NodeId::index`]; entry 0 is the source pin (after the driver).
    pub graph_nodes: Vec<usize>,
    /// Circuit nodes of the sink pins, in net pin order `n_1..n_k`.
    pub sink_nodes: Vec<usize>,
    /// For each extracted edge, the contiguous range of
    /// [`Circuit::elements`] indices holding its wire stamps (π-segment
    /// R/C/L elements), in the edge-iteration order of the extraction.
    /// Lets incremental re-evaluation patch one edge's values in place
    /// instead of re-running extraction.
    pub edge_spans: Vec<(EdgeId, Range<usize>)>,
}

/// Extracts the RC(L) circuit of a routing graph under a technology.
///
/// Circuit model (matching the paper's SPICE setup):
///
/// - ideal step source → driver resistor → source pin node,
/// - every edge split per `opts.segmentation` into π-segments: series
///   `R = r·len/(k·w)` (and optionally series `L = l·len/k`), with
///   `C = c·len·w/(2k)` to ground at both segment ends,
/// - sink loading capacitance at every sink pin.
///
/// # Errors
///
/// Returns [`ExtractError::Disconnected`] when the graph does not span the
/// net and [`ExtractError::InvalidSegmentation`] for non-positive
/// segmentation parameters.
pub fn extract(
    graph: &RoutingGraph,
    tech: &Technology,
    opts: &ExtractOptions,
) -> Result<Extracted, ExtractError> {
    match opts.segmentation {
        Segmentation::PerEdge(0) => return Err(ExtractError::InvalidSegmentation),
        Segmentation::MaxLength(m) if !(m.is_finite() && m > 0.0) => {
            return Err(ExtractError::InvalidSegmentation)
        }
        _ => {}
    }
    if !graph.is_connected() {
        return Err(ExtractError::Disconnected {
            reachable: graph.reachable_from_source(),
            total: graph.node_count(),
        });
    }

    let mut circuit = Circuit::new();
    // One circuit node per routing-graph node.
    let graph_nodes: Vec<usize> = (0..graph.node_count())
        .map(|_| circuit.add_node())
        .collect();

    // Driver: step source -> driver resistance -> source pin.
    let input_node = circuit.add_node();
    circuit.add_voltage_source(
        input_node,
        Circuit::GROUND,
        Waveform::Step {
            level: tech.supply_voltage,
        },
    )?;
    circuit.add_resistor(input_node, graph_nodes[0], tech.driver_resistance)?;

    // Wires as π-segment chains.
    let mut edge_spans = Vec::new();
    for (edge_id, edge) in graph.edges() {
        let span_start = circuit.elements().len();
        let k = opts.segmentation.segments_for(edge.length());
        let seg_len = edge.length() / k as f64;
        if seg_len == 0.0 {
            // Zero-length edge (coincident Steiner point): electrical short.
            // Model as a tiny resistor to keep the matrix nonsingular.
            circuit.add_resistor(
                graph_nodes[edge.a().index()],
                graph_nodes[edge.b().index()],
                1e-6,
            )?;
            edge_spans.push((edge_id, span_start..circuit.elements().len()));
            continue;
        }
        let seg_r = tech.wire_resistance(seg_len, edge.width());
        let seg_c_half = tech.wire_capacitance(seg_len, edge.width()) / 2.0;
        let seg_l = tech.wire_inductance(seg_len);
        let mut prev = graph_nodes[edge.a().index()];
        for s in 0..k {
            let next = if s + 1 == k {
                graph_nodes[edge.b().index()]
            } else {
                circuit.add_node()
            };
            circuit.add_capacitor(prev, Circuit::GROUND, seg_c_half)?;
            if opts.include_inductance {
                let mid = circuit.add_node();
                circuit.add_resistor(prev, mid, seg_r)?;
                circuit.add_inductor(mid, next, seg_l)?;
            } else {
                circuit.add_resistor(prev, next, seg_r)?;
            }
            circuit.add_capacitor(next, Circuit::GROUND, seg_c_half)?;
            prev = next;
        }
        edge_spans.push((edge_id, span_start..circuit.elements().len()));
    }

    // Sink loads, in pin order.
    let mut sink_pairs: Vec<(usize, usize)> = graph
        .pin_nodes()
        .filter(|&(_, pin)| pin != 0)
        .map(|(node, pin)| (pin, graph_nodes[node.index()]))
        .collect();
    sink_pairs.sort_unstable_by_key(|&(pin, _)| pin);
    let mut sink_nodes = Vec::with_capacity(sink_pairs.len());
    for (_, cnode) in sink_pairs {
        circuit.add_capacitor(cnode, Circuit::GROUND, tech.sink_capacitance)?;
        sink_nodes.push(cnode);
    }

    Ok(Extracted {
        circuit,
        input_node,
        graph_nodes,
        sink_nodes,
        edge_spans,
    })
}

/// The electrical delta of one **trial wire** between two already-extracted
/// routing-graph nodes, described as stamps rather than a rebuilt circuit.
///
/// Produced by [`Extracted::candidate_wire`]; consumed either by
/// [`Extracted::with_candidate_edge`] (materialize the stamps into a full
/// circuit) or by incremental evaluators that apply the delta analytically
/// (chain reduction + rank-1 matrix update) without touching the circuit
/// at all.
///
/// The wire follows the same RC π-segment model as [`extract`]: `segments`
/// series resistors of `seg_resistance` each, with `seg_cap_half` to
/// ground at both ends of every segment. A zero-length wire degenerates to
/// a single tiny resistor ("short") with no capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateWire {
    /// Circuit node of endpoint `a`.
    pub node_a: usize,
    /// Circuit node of endpoint `b`.
    pub node_b: usize,
    /// Number of π-segments `k ≥ 1`.
    pub segments: usize,
    /// Series resistance per segment (Ω).
    pub seg_resistance: f64,
    /// Grounded capacitance at each segment end (F); `0.0` for a short.
    pub seg_cap_half: f64,
    /// Wire length (µm).
    pub length: f64,
    /// Width multiplier.
    pub width: f64,
}

impl CandidateWire {
    /// Conductance of one segment, `1 / seg_resistance` (S).
    #[must_use]
    pub fn seg_conductance(&self) -> f64 {
        1.0 / self.seg_resistance
    }

    /// Effective end-to-end conductance of the whole series chain (S).
    #[must_use]
    pub fn chain_conductance(&self) -> f64 {
        self.seg_conductance() / self.segments as f64
    }

    /// Whether this is a zero-length short (no capacitance, one segment).
    #[must_use]
    pub fn is_short(&self) -> bool {
        self.seg_cap_half == 0.0
    }

    /// Total added capacitance, `2·k·seg_cap_half` (F).
    #[must_use]
    pub fn total_capacitance(&self) -> f64 {
        2.0 * self.segments as f64 * self.seg_cap_half
    }
}

impl Extracted {
    /// Describes the trial wire `(a, b)` as a [`CandidateWire`] delta
    /// without rebuilding anything — the incremental counterpart of
    /// re-running [`extract`] on a graph with the edge added.
    ///
    /// The wire uses the same segmentation policy and RC model as the
    /// original extraction (inductance is not modeled on candidate wires;
    /// incremental evaluation is RC-only).
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::UnknownGraphNode`] when either endpoint is
    /// outside the extracted graph and [`ExtractError::Build`] for a
    /// non-positive width.
    pub fn candidate_wire(
        &self,
        graph: &RoutingGraph,
        tech: &Technology,
        opts: &ExtractOptions,
        a: NodeId,
        b: NodeId,
        width: f64,
    ) -> Result<CandidateWire, ExtractError> {
        if a.index() >= self.graph_nodes.len() {
            return Err(ExtractError::UnknownGraphNode { node: a.index() });
        }
        if b.index() >= self.graph_nodes.len() {
            return Err(ExtractError::UnknownGraphNode { node: b.index() });
        }
        if !(width.is_finite() && width > 0.0) {
            return Err(ExtractError::Build(BuildCircuitError::InvalidValue {
                value: width,
            }));
        }
        let pa = graph
            .point(a)
            .map_err(|_| ExtractError::UnknownGraphNode { node: a.index() })?;
        let pb = graph
            .point(b)
            .map_err(|_| ExtractError::UnknownGraphNode { node: b.index() })?;
        let length = pa.manhattan(pb);
        let k = opts.segmentation.segments_for(length);
        let seg_len = length / k as f64;
        let (segments, seg_resistance, seg_cap_half) = if seg_len == 0.0 {
            // Same short model as extract(): one tiny resistor, no caps.
            (1, 1e-6, 0.0)
        } else {
            (
                k,
                tech.wire_resistance(seg_len, width),
                tech.wire_capacitance(seg_len, width) / 2.0,
            )
        };
        Ok(CandidateWire {
            node_a: self.graph_nodes[a.index()],
            node_b: self.graph_nodes[b.index()],
            segments,
            seg_resistance,
            seg_cap_half,
            length,
            width,
        })
    }

    /// Materializes a candidate wire: clones this extraction and appends
    /// the trial stamps (π-segment chain between the wire's endpoints) to
    /// the cloned circuit, avoiding a full re-extraction of the graph.
    ///
    /// The result is electrically identical to extracting the graph with
    /// the edge committed; only element order and internal-node numbering
    /// differ. The appended stamps occupy
    /// `elements()[base.circuit.elements().len()..]` of the clone.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::Build`] when a stamp references an unknown
    /// node (a [`CandidateWire`] not produced for this extraction).
    pub fn with_candidate_edge(&self, wire: &CandidateWire) -> Result<Extracted, ExtractError> {
        let mut out = self.clone();
        if wire.is_short() {
            out.circuit
                .add_resistor(wire.node_a, wire.node_b, wire.seg_resistance)?;
            return Ok(out);
        }
        let mut prev = wire.node_a;
        for s in 0..wire.segments {
            let next = if s + 1 == wire.segments {
                wire.node_b
            } else {
                out.circuit.add_node()
            };
            out.circuit
                .add_capacitor(prev, Circuit::GROUND, wire.seg_cap_half)?;
            out.circuit.add_resistor(prev, next, wire.seg_resistance)?;
            out.circuit
                .add_capacitor(next, Circuit::GROUND, wire.seg_cap_half)?;
            prev = next;
        }
        Ok(out)
    }

    /// Rescales one extracted edge's wire stamps for a width change, in
    /// place: resistances divide by `new_width / old_width`, capacitances
    /// multiply by it (inductance is width-independent, as is the tiny
    /// resistor modeling a zero-length short).
    ///
    /// Because the element *pattern* is untouched, the resulting circuit
    /// assembles an MNA matrix with the identical sparsity structure —
    /// exactly what a numeric-only refactorization needs.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::UnknownEdge`] for an edge without a
    /// recorded span and [`ExtractError::Build`] for a non-positive ratio.
    pub fn rescale_edge_width(&mut self, edge: EdgeId, ratio: f64) -> Result<(), ExtractError> {
        if !(ratio.is_finite() && ratio > 0.0) {
            return Err(ExtractError::Build(BuildCircuitError::InvalidValue {
                value: ratio,
            }));
        }
        let span = self
            .edge_spans
            .iter()
            .find(|(id, _)| *id == edge)
            .map(|(_, span)| span.clone())
            .ok_or(ExtractError::UnknownEdge { edge: edge.index() })?;
        let elements = self.circuit.elements_mut();
        // A zero-length short is a single nominal resistor whose value
        // does not model the wire geometry; leave it untouched.
        let is_short = !elements[span.clone()]
            .iter()
            .any(|e| matches!(e, Element::Capacitor { .. }));
        if is_short {
            return Ok(());
        }
        for element in &mut elements[span] {
            match element {
                Element::Resistor { ohms, .. } => *ohms /= ratio,
                Element::Capacitor { farads, .. } => *farads *= ratio,
                _ => {}
            }
        }
        Ok(())
    }
}

/// The circuit node carrying a given routing-graph node's voltage.
///
/// Convenience helper over [`Extracted::graph_nodes`].
#[must_use]
pub fn circuit_node_of(extracted: &Extracted, node: NodeId) -> usize {
    extracted.graph_nodes[node.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_geom::{Net, Point};
    use ntr_graph::prim_mst;

    fn two_pin_mm() -> RoutingGraph {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(1000.0, 0.0)]).unwrap();
        prim_mst(&net)
    }

    #[test]
    fn single_wire_extraction_balances_capacitance() {
        let g = two_pin_mm();
        let tech = Technology::date94();
        let ex = extract(&g, &tech, &ExtractOptions::default()).unwrap();
        // Wire cap + one sink load.
        let expected = tech.wire_capacitance(1000.0, 1.0) + tech.sink_capacitance;
        assert!((ex.circuit.total_capacitance() - expected).abs() < 1e-24);
        assert_eq!(ex.sink_nodes.len(), 1);
        assert_eq!(ex.circuit.voltage_source_count(), 1);
    }

    #[test]
    fn segmentation_policies_agree_on_totals() {
        let g = two_pin_mm();
        let tech = Technology::date94();
        let coarse = extract(
            &g,
            &tech,
            &ExtractOptions {
                segmentation: Segmentation::PerEdge(1),
                include_inductance: false,
            },
        )
        .unwrap();
        let fine = extract(
            &g,
            &tech,
            &ExtractOptions {
                segmentation: Segmentation::MaxLength(50.0),
                include_inductance: false,
            },
        )
        .unwrap();
        assert!(
            (coarse.circuit.total_capacitance() - fine.circuit.total_capacitance()).abs() < 1e-24
        );
        assert!(fine.circuit.node_count() > coarse.circuit.node_count());
    }

    #[test]
    fn inductance_adds_branches() {
        let g = two_pin_mm();
        let tech = Technology::date94();
        let opts = ExtractOptions {
            segmentation: Segmentation::PerEdge(4),
            include_inductance: true,
        };
        let ex = extract(&g, &tech, &opts).unwrap();
        assert_eq!(ex.circuit.inductor_count(), 4);
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(1.0, 0.0)]).unwrap();
        let g = RoutingGraph::from_net(&net);
        assert!(matches!(
            extract(&g, &Technology::date94(), &ExtractOptions::default()),
            Err(ExtractError::Disconnected { .. })
        ));
    }

    #[test]
    fn invalid_segmentation_is_rejected() {
        let g = two_pin_mm();
        for seg in [Segmentation::PerEdge(0), Segmentation::MaxLength(0.0)] {
            let opts = ExtractOptions {
                segmentation: seg,
                include_inductance: false,
            };
            assert!(matches!(
                extract(&g, &Technology::date94(), &opts),
                Err(ExtractError::InvalidSegmentation)
            ));
        }
    }

    #[test]
    fn edge_spans_cover_all_wire_stamps() {
        let net = Net::new(
            Point::new(0.0, 0.0),
            vec![Point::new(1200.0, 0.0), Point::new(0.0, 700.0)],
        )
        .unwrap();
        let g = prim_mst(&net);
        let ex = extract(&g, &Technology::date94(), &ExtractOptions::default()).unwrap();
        assert_eq!(ex.edge_spans.len(), g.edges().count());
        // Spans are contiguous, non-overlapping, and bound by the element list.
        let mut covered = 0usize;
        for (_, span) in &ex.edge_spans {
            assert!(span.start <= span.end && span.end <= ex.circuit.elements().len());
            covered += span.len();
            for e in &ex.circuit.elements()[span.clone()] {
                assert!(matches!(
                    e,
                    Element::Resistor { .. } | Element::Capacitor { .. } | Element::Inductor { .. }
                ));
            }
        }
        // Everything except driver source+resistor and the two sink loads.
        assert_eq!(covered, ex.circuit.elements().len() - 4);
    }

    #[test]
    fn candidate_wire_matches_committed_extraction() {
        let net = Net::new(
            Point::new(0.0, 0.0),
            vec![Point::new(1200.0, 0.0), Point::new(0.0, 700.0)],
        )
        .unwrap();
        let g = prim_mst(&net);
        let tech = Technology::date94();
        let opts = ExtractOptions::default();
        let ex = extract(&g, &tech, &opts).unwrap();
        let nodes: Vec<_> = g.node_ids().collect();
        let wire = ex
            .candidate_wire(&g, &tech, &opts, nodes[1], nodes[2], 1.0)
            .unwrap();
        let trial = ex.with_candidate_edge(&wire).unwrap();

        let mut committed = g.clone();
        committed.add_edge(nodes[1], nodes[2]).unwrap();
        let full = extract(&committed, &tech, &opts).unwrap();
        // Same node count and the same total capacitance either way.
        assert_eq!(trial.circuit.node_count(), full.circuit.node_count());
        assert!(
            (trial.circuit.total_capacitance() - full.circuit.total_capacitance()).abs() < 1e-24
        );
        assert_eq!(wire.length, 1900.0);
        assert!((wire.total_capacitance() - tech.wire_capacitance(1900.0, 1.0)).abs() < 1e-24);
    }

    #[test]
    fn candidate_wire_zero_length_is_short() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(1000.0, 0.0)]).unwrap();
        let mut g = prim_mst(&net);
        // A Steiner point coincident with the source.
        let s = g.add_steiner(Point::new(0.0, 0.0));
        g.add_edge(g.source(), s).unwrap();
        let tech = Technology::date94();
        let opts = ExtractOptions::default();
        let ex = extract(&g, &tech, &opts).unwrap();
        let wire = ex
            .candidate_wire(&g, &tech, &opts, g.source(), s, 1.0)
            .unwrap();
        assert!(wire.is_short());
        assert_eq!(wire.segments, 1);
        assert_eq!(wire.total_capacitance(), 0.0);
        let trial = ex.with_candidate_edge(&wire).unwrap();
        assert_eq!(
            trial.circuit.elements().len(),
            ex.circuit.elements().len() + 1
        );
    }

    #[test]
    fn candidate_wire_rejects_unknown_node() {
        let g = two_pin_mm();
        let tech = Technology::date94();
        let opts = ExtractOptions::default();
        let ex = extract(&g, &tech, &opts).unwrap();
        // A node added after extraction is unknown to it.
        let mut grown = g.clone();
        let extra = grown.add_steiner(Point::new(5.0, 5.0));
        assert!(matches!(
            ex.candidate_wire(&grown, &tech, &opts, grown.source(), extra, 1.0),
            Err(ExtractError::UnknownGraphNode { .. })
        ));
    }

    #[test]
    fn rescale_edge_width_matches_reextraction() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(1000.0, 0.0)]).unwrap();
        let g = prim_mst(&net);
        let tech = Technology::date94();
        let opts = ExtractOptions::default();
        let mut ex = extract(&g, &tech, &opts).unwrap();
        let (edge_id, _) = g.edges().next().unwrap();

        let mut wide = g.clone();
        wide.set_width(edge_id, 3.0).unwrap();
        let fresh = extract(&wide, &tech, &opts).unwrap();

        ex.rescale_edge_width(edge_id, 3.0).unwrap();
        assert_eq!(ex.circuit.elements().len(), fresh.circuit.elements().len());
        for (a, b) in ex.circuit.elements().iter().zip(fresh.circuit.elements()) {
            match (a, b) {
                (Element::Resistor { ohms: x, .. }, Element::Resistor { ohms: y, .. }) => {
                    assert!((x - y).abs() < 1e-12 * y.abs().max(1.0), "{x} vs {y}");
                }
                (Element::Capacitor { farads: x, .. }, Element::Capacitor { farads: y, .. }) => {
                    assert!((x - y).abs() < 1e-27, "{x} vs {y}");
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn rescale_unknown_edge_is_rejected() {
        let g = two_pin_mm();
        let tech = Technology::date94();
        let mut ex = extract(&g, &tech, &ExtractOptions::default()).unwrap();
        let mut grown = g.clone();
        let s = grown.add_steiner(Point::new(1.0, 1.0));
        let new_edge = grown.add_edge(grown.source(), s).unwrap();
        assert!(matches!(
            ex.rescale_edge_width(new_edge, 2.0),
            Err(ExtractError::UnknownEdge { .. })
        ));
    }

    #[test]
    fn wider_wires_lower_resistance() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(1000.0, 0.0)]).unwrap();
        let mut g = RoutingGraph::from_net(&net);
        let sink = g.node_ids().nth(1).unwrap();
        g.add_edge_with_width(g.source(), sink, 4.0).unwrap();
        let tech = Technology::date94();
        let opts = ExtractOptions {
            segmentation: Segmentation::PerEdge(1),
            include_inductance: false,
        };
        let ex = extract(&g, &tech, &opts).unwrap();
        let r_total: f64 = ex
            .circuit
            .elements()
            .iter()
            .filter_map(|e| match e {
                crate::Element::Resistor { ohms, .. } => Some(*ohms),
                _ => None,
            })
            .sum();
        // driver 100 + wire 30/4
        assert!((r_total - 107.5).abs() < 1e-9);
    }
}
