use std::error::Error;
use std::fmt;

use ntr_graph::{NodeId, RoutingGraph};

use crate::{BuildCircuitError, Circuit, Technology, Waveform};

/// How wires are split into distributed π-segments.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Segmentation {
    /// A fixed number of segments per edge, regardless of length.
    PerEdge(usize),
    /// As many segments as needed so none exceeds the given length (µm).
    MaxLength(f64),
}

impl Segmentation {
    fn segments_for(&self, length_um: f64) -> usize {
        match *self {
            Segmentation::PerEdge(k) => k.max(1),
            Segmentation::MaxLength(max) => ((length_um / max).ceil() as usize).max(1),
        }
    }
}

/// Options controlling RC(L) extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractOptions {
    /// Wire segmentation policy. Default: 500 µm per segment, which keeps
    /// the distributed-line error on 10 mm nets under a percent while
    /// staying cheap to simulate.
    pub segmentation: Segmentation,
    /// Include the series wire inductance (RLC instead of RC). The paper's
    /// SPICE model lists inductance; at 0.8 µm dimensions its delay effect
    /// is small (see the `ablation_inductance` bench). Default: `false`.
    pub include_inductance: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        Self {
            segmentation: Segmentation::MaxLength(500.0),
            include_inductance: false,
        }
    }
}

/// Errors raised by extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ExtractError {
    /// The routing graph has no edges or unreachable pins; a meaningful
    /// circuit requires a spanning (connected) routing.
    Disconnected {
        /// Nodes reachable from the source.
        reachable: usize,
        /// Total nodes.
        total: usize,
    },
    /// Invalid segmentation parameter.
    InvalidSegmentation,
    /// Circuit assembly failed (propagated element error).
    Build(BuildCircuitError),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Disconnected { reachable, total } => write!(
                f,
                "routing graph must span the net: {reachable} of {total} nodes reachable"
            ),
            ExtractError::InvalidSegmentation => {
                write!(f, "segmentation parameters must be positive")
            }
            ExtractError::Build(e) => write!(f, "circuit assembly failed: {e}"),
        }
    }
}

impl Error for ExtractError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExtractError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildCircuitError> for ExtractError {
    fn from(e: BuildCircuitError) -> Self {
        ExtractError::Build(e)
    }
}

/// The result of extracting a routing graph: the circuit plus the node
/// bookkeeping needed to interpret simulation results.
#[derive(Debug, Clone, PartialEq)]
pub struct Extracted {
    /// The assembled linear circuit.
    pub circuit: Circuit,
    /// Circuit node of the ideal step source (before the driver resistor).
    pub input_node: usize,
    /// Circuit node of each routing-graph node, indexed by
    /// [`NodeId::index`]; entry 0 is the source pin (after the driver).
    pub graph_nodes: Vec<usize>,
    /// Circuit nodes of the sink pins, in net pin order `n_1..n_k`.
    pub sink_nodes: Vec<usize>,
}

/// Extracts the RC(L) circuit of a routing graph under a technology.
///
/// Circuit model (matching the paper's SPICE setup):
///
/// - ideal step source → driver resistor → source pin node,
/// - every edge split per `opts.segmentation` into π-segments: series
///   `R = r·len/(k·w)` (and optionally series `L = l·len/k`), with
///   `C = c·len·w/(2k)` to ground at both segment ends,
/// - sink loading capacitance at every sink pin.
///
/// # Errors
///
/// Returns [`ExtractError::Disconnected`] when the graph does not span the
/// net and [`ExtractError::InvalidSegmentation`] for non-positive
/// segmentation parameters.
pub fn extract(
    graph: &RoutingGraph,
    tech: &Technology,
    opts: &ExtractOptions,
) -> Result<Extracted, ExtractError> {
    match opts.segmentation {
        Segmentation::PerEdge(0) => return Err(ExtractError::InvalidSegmentation),
        Segmentation::MaxLength(m) if !(m.is_finite() && m > 0.0) => {
            return Err(ExtractError::InvalidSegmentation)
        }
        _ => {}
    }
    if !graph.is_connected() {
        return Err(ExtractError::Disconnected {
            reachable: graph.reachable_from_source(),
            total: graph.node_count(),
        });
    }

    let mut circuit = Circuit::new();
    // One circuit node per routing-graph node.
    let graph_nodes: Vec<usize> = (0..graph.node_count())
        .map(|_| circuit.add_node())
        .collect();

    // Driver: step source -> driver resistance -> source pin.
    let input_node = circuit.add_node();
    circuit.add_voltage_source(
        input_node,
        Circuit::GROUND,
        Waveform::Step {
            level: tech.supply_voltage,
        },
    )?;
    circuit.add_resistor(input_node, graph_nodes[0], tech.driver_resistance)?;

    // Wires as π-segment chains.
    for (_, edge) in graph.edges() {
        let k = opts.segmentation.segments_for(edge.length());
        let seg_len = edge.length() / k as f64;
        if seg_len == 0.0 {
            // Zero-length edge (coincident Steiner point): electrical short.
            // Model as a tiny resistor to keep the matrix nonsingular.
            circuit.add_resistor(
                graph_nodes[edge.a().index()],
                graph_nodes[edge.b().index()],
                1e-6,
            )?;
            continue;
        }
        let seg_r = tech.wire_resistance(seg_len, edge.width());
        let seg_c_half = tech.wire_capacitance(seg_len, edge.width()) / 2.0;
        let seg_l = tech.wire_inductance(seg_len);
        let mut prev = graph_nodes[edge.a().index()];
        for s in 0..k {
            let next = if s + 1 == k {
                graph_nodes[edge.b().index()]
            } else {
                circuit.add_node()
            };
            circuit.add_capacitor(prev, Circuit::GROUND, seg_c_half)?;
            if opts.include_inductance {
                let mid = circuit.add_node();
                circuit.add_resistor(prev, mid, seg_r)?;
                circuit.add_inductor(mid, next, seg_l)?;
            } else {
                circuit.add_resistor(prev, next, seg_r)?;
            }
            circuit.add_capacitor(next, Circuit::GROUND, seg_c_half)?;
            prev = next;
        }
    }

    // Sink loads, in pin order.
    let mut sink_pairs: Vec<(usize, usize)> = graph
        .pin_nodes()
        .filter(|&(_, pin)| pin != 0)
        .map(|(node, pin)| (pin, graph_nodes[node.index()]))
        .collect();
    sink_pairs.sort_unstable_by_key(|&(pin, _)| pin);
    let mut sink_nodes = Vec::with_capacity(sink_pairs.len());
    for (_, cnode) in sink_pairs {
        circuit.add_capacitor(cnode, Circuit::GROUND, tech.sink_capacitance)?;
        sink_nodes.push(cnode);
    }

    Ok(Extracted {
        circuit,
        input_node,
        graph_nodes,
        sink_nodes,
    })
}

/// The circuit node carrying a given routing-graph node's voltage.
///
/// Convenience helper over [`Extracted::graph_nodes`].
#[must_use]
pub fn circuit_node_of(extracted: &Extracted, node: NodeId) -> usize {
    extracted.graph_nodes[node.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_geom::{Net, Point};
    use ntr_graph::prim_mst;

    fn two_pin_mm() -> RoutingGraph {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(1000.0, 0.0)]).unwrap();
        prim_mst(&net)
    }

    #[test]
    fn single_wire_extraction_balances_capacitance() {
        let g = two_pin_mm();
        let tech = Technology::date94();
        let ex = extract(&g, &tech, &ExtractOptions::default()).unwrap();
        // Wire cap + one sink load.
        let expected = tech.wire_capacitance(1000.0, 1.0) + tech.sink_capacitance;
        assert!((ex.circuit.total_capacitance() - expected).abs() < 1e-24);
        assert_eq!(ex.sink_nodes.len(), 1);
        assert_eq!(ex.circuit.voltage_source_count(), 1);
    }

    #[test]
    fn segmentation_policies_agree_on_totals() {
        let g = two_pin_mm();
        let tech = Technology::date94();
        let coarse = extract(
            &g,
            &tech,
            &ExtractOptions {
                segmentation: Segmentation::PerEdge(1),
                include_inductance: false,
            },
        )
        .unwrap();
        let fine = extract(
            &g,
            &tech,
            &ExtractOptions {
                segmentation: Segmentation::MaxLength(50.0),
                include_inductance: false,
            },
        )
        .unwrap();
        assert!(
            (coarse.circuit.total_capacitance() - fine.circuit.total_capacitance()).abs() < 1e-24
        );
        assert!(fine.circuit.node_count() > coarse.circuit.node_count());
    }

    #[test]
    fn inductance_adds_branches() {
        let g = two_pin_mm();
        let tech = Technology::date94();
        let opts = ExtractOptions {
            segmentation: Segmentation::PerEdge(4),
            include_inductance: true,
        };
        let ex = extract(&g, &tech, &opts).unwrap();
        assert_eq!(ex.circuit.inductor_count(), 4);
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(1.0, 0.0)]).unwrap();
        let g = RoutingGraph::from_net(&net);
        assert!(matches!(
            extract(&g, &Technology::date94(), &ExtractOptions::default()),
            Err(ExtractError::Disconnected { .. })
        ));
    }

    #[test]
    fn invalid_segmentation_is_rejected() {
        let g = two_pin_mm();
        for seg in [Segmentation::PerEdge(0), Segmentation::MaxLength(0.0)] {
            let opts = ExtractOptions {
                segmentation: seg,
                include_inductance: false,
            };
            assert!(matches!(
                extract(&g, &Technology::date94(), &opts),
                Err(ExtractError::InvalidSegmentation)
            ));
        }
    }

    #[test]
    fn wider_wires_lower_resistance() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(1000.0, 0.0)]).unwrap();
        let mut g = RoutingGraph::from_net(&net);
        let sink = g.node_ids().nth(1).unwrap();
        g.add_edge_with_width(g.source(), sink, 4.0).unwrap();
        let tech = Technology::date94();
        let opts = ExtractOptions {
            segmentation: Segmentation::PerEdge(1),
            include_inductance: false,
        };
        let ex = extract(&g, &tech, &opts).unwrap();
        let r_total: f64 = ex
            .circuit
            .elements()
            .iter()
            .filter_map(|e| match e {
                crate::Element::Resistor { ohms, .. } => Some(*ohms),
                _ => None,
            })
            .sum();
        // driver 100 + wire 30/4
        assert!((r_total - 107.5).abs() < 1e-9);
    }
}
