use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{BuildCircuitError, Circuit, Waveform};

/// Errors raised while parsing a SPICE deck.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseDeckError {
    /// A card has too few fields.
    TooFewFields {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric value (possibly with a SPICE suffix) failed to parse.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// An unsupported element or card was encountered.
    Unsupported {
        /// 1-based line number.
        line: usize,
        /// The card's leading token.
        card: String,
    },
    /// A source specification was malformed.
    BadSource {
        /// 1-based line number.
        line: usize,
    },
    /// The parsed element was rejected by the circuit builder.
    Build {
        /// 1-based line number.
        line: usize,
        /// The underlying builder error.
        source: BuildCircuitError,
    },
}

impl fmt::Display for ParseDeckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDeckError::TooFewFields { line } => {
                write!(f, "line {line}: element card has too few fields")
            }
            ParseDeckError::BadValue { line, token } => {
                write!(f, "line {line}: cannot parse value {token:?}")
            }
            ParseDeckError::Unsupported { line, card } => {
                write!(f, "line {line}: unsupported card {card:?}")
            }
            ParseDeckError::BadSource { line } => {
                write!(f, "line {line}: malformed source specification")
            }
            ParseDeckError::Build { line, source } => {
                write!(f, "line {line}: {source}")
            }
        }
    }
}

impl Error for ParseDeckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseDeckError::Build { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The result of [`parse_spice_deck`]: the circuit plus the deck's title
/// and the mapping from deck node names to circuit node indices.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedDeck {
    /// The assembled circuit.
    pub circuit: Circuit,
    /// The title line (first line of the deck), if any.
    pub title: String,
    /// Deck node name → circuit node index (`"0"` maps to ground).
    pub nodes: HashMap<String, usize>,
}

/// Parses a SPICE value with an optional engineering suffix
/// (`f p n u m k meg g t`, case-insensitive; `mil` is unsupported).
///
/// # Examples
///
/// ```
/// use ntr_circuit::parse_spice_value;
/// let v = parse_spice_value("15.3f").unwrap();
/// assert!((v - 15.3e-15).abs() < 1e-27);
/// assert_eq!(parse_spice_value("1.2K"), Some(1200.0));
/// assert_eq!(parse_spice_value("3meg"), Some(3.0e6));
/// assert_eq!(parse_spice_value("2.5e-9"), Some(2.5e-9));
/// assert_eq!(parse_spice_value("oops"), None);
/// ```
#[must_use]
pub fn parse_spice_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return None;
    }
    // Longest suffix first.
    const SUFFIXES: [(&str, f64); 9] = [
        ("meg", 1e6),
        ("f", 1e-15),
        ("p", 1e-12),
        ("n", 1e-9),
        ("u", 1e-6),
        ("m", 1e-3),
        ("k", 1e3),
        ("g", 1e9),
        ("t", 1e12),
    ];
    for (suffix, scale) in SUFFIXES {
        if let Some(stripped) = t.strip_suffix(suffix) {
            // Avoid mis-parsing exponents like "1e-3" where "m"/"g" etc.
            // are not present; strip only when the remainder parses.
            if let Ok(v) = stripped.parse::<f64>() {
                return Some(v * scale);
            }
        }
    }
    t.parse::<f64>().ok()
}

/// Parses a SPICE-format netlist deck into a [`Circuit`].
///
/// Supported cards: `R` / `C` / `L` two-terminal elements, `V` / `I`
/// sources with `DC x` or `PWL(t0 v0 t1 v1 ...)` specifications, comment
/// lines (`*`), continuation-free dot cards (`.tran`, `.print`, `.end`,
/// ignored), and blank lines. Node `0` is ground; other node names may be
/// arbitrary identifiers and are assigned circuit indices in order of
/// first appearance.
///
/// Together with [`to_spice_deck`](crate::to_spice_deck) this gives a
/// lossless round trip for the circuits this workspace produces, enabling
/// differential testing against an external SPICE.
///
/// # Errors
///
/// Returns [`ParseDeckError`] for malformed cards, unsupported elements,
/// or element values the circuit builder rejects.
///
/// # Examples
///
/// ```
/// use ntr_circuit::parse_spice_deck;
/// # fn main() -> Result<(), ntr_circuit::ParseDeckError> {
/// let deck = "\
/// * rc lowpass
/// V1 in 0 PWL(0 0 1p 1)
/// R1 in out 1k
/// C1 out 0 1p
/// .tran 1p 10n
/// .end
/// ";
/// let parsed = parse_spice_deck(deck)?;
/// assert_eq!(parsed.title, "rc lowpass");
/// assert_eq!(parsed.circuit.node_count(), 3); // ground + in + out
/// assert_eq!(parsed.circuit.elements().len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse_spice_deck(deck: &str) -> Result<ParsedDeck, ParseDeckError> {
    let mut circuit = Circuit::new();
    let mut nodes: HashMap<String, usize> = HashMap::new();
    nodes.insert("0".to_owned(), Circuit::GROUND);
    let mut title = String::new();
    let mut saw_title = false;

    for (idx, raw) in deck.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('*') {
            if !saw_title {
                title = comment.trim().to_owned();
                saw_title = true;
            }
            continue;
        }
        if line.starts_with('.') {
            continue; // .tran/.print/.end and friends: analysis cards
        }
        let mut fields = line.split_whitespace();
        let name = fields.next().expect("non-empty line has a first token");
        let kind = name
            .chars()
            .next()
            .expect("token is non-empty")
            .to_ascii_uppercase();
        let rest: Vec<&str> = fields.collect();
        if rest.len() < 2 {
            return Err(ParseDeckError::TooFewFields { line: line_no });
        }
        let mut node_of = |label: &str, circuit: &mut Circuit| -> usize {
            *nodes
                .entry(label.to_owned())
                .or_insert_with(|| circuit.add_node())
        };
        let a = node_of(rest[0], &mut circuit);
        let b = node_of(rest[1], &mut circuit);
        let build = |e: BuildCircuitError| ParseDeckError::Build {
            line: line_no,
            source: e,
        };

        match kind {
            'R' | 'C' | 'L' => {
                let token = rest
                    .get(2)
                    .ok_or(ParseDeckError::TooFewFields { line: line_no })?;
                let value = parse_spice_value(token).ok_or_else(|| ParseDeckError::BadValue {
                    line: line_no,
                    token: (*token).to_owned(),
                })?;
                match kind {
                    'R' => circuit.add_resistor(a, b, value).map_err(build)?,
                    'C' => circuit.add_capacitor(a, b, value).map_err(build)?,
                    _ => circuit.add_inductor(a, b, value).map_err(build)?,
                }
            }
            'V' | 'I' => {
                let spec = rest[2..].join(" ");
                let waveform = parse_source_spec(&spec, line_no)?;
                if kind == 'V' {
                    circuit.add_voltage_source(a, b, waveform).map_err(build)?;
                } else {
                    circuit.add_current_source(a, b, waveform).map_err(build)?;
                }
            }
            _ => {
                return Err(ParseDeckError::Unsupported {
                    line: line_no,
                    card: name.to_owned(),
                })
            }
        }
    }
    Ok(ParsedDeck {
        circuit,
        title,
        nodes,
    })
}

/// Parses `DC x`, a bare numeric value, or `PWL(t v t v ...)`.
fn parse_source_spec(spec: &str, line: usize) -> Result<Waveform, ParseDeckError> {
    let s = spec.trim();
    let upper = s.to_ascii_uppercase();
    if let Some(value) = upper.strip_prefix("DC") {
        let v = parse_spice_value(value.trim()).ok_or_else(|| ParseDeckError::BadValue {
            line,
            token: value.trim().to_owned(),
        })?;
        return Ok(Waveform::Dc(v));
    }
    if upper.starts_with("PWL") {
        let open = s.find('(').ok_or(ParseDeckError::BadSource { line })?;
        let close = s.rfind(')').ok_or(ParseDeckError::BadSource { line })?;
        if close <= open {
            return Err(ParseDeckError::BadSource { line });
        }
        let body = &s[open + 1..close];
        let tokens: Vec<&str> = body.split_whitespace().collect();
        if tokens.is_empty() || !tokens.len().is_multiple_of(2) {
            return Err(ParseDeckError::BadSource { line });
        }
        let mut points = Vec::with_capacity(tokens.len() / 2);
        for pair in tokens.chunks(2) {
            let t = parse_spice_value(pair[0]).ok_or_else(|| ParseDeckError::BadValue {
                line,
                token: pair[0].to_owned(),
            })?;
            let v = parse_spice_value(pair[1]).ok_or_else(|| ParseDeckError::BadValue {
                line,
                token: pair[1].to_owned(),
            })?;
            points.push((t, v));
        }
        return Ok(Waveform::Pwl(points));
    }
    // Bare value = DC.
    parse_spice_value(s)
        .map(Waveform::Dc)
        .ok_or(ParseDeckError::BadSource { line })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Element;

    #[test]
    fn suffixes_parse_correctly() {
        assert_eq!(parse_spice_value("0.03"), Some(0.03));
        assert_eq!(parse_spice_value("492F"), Some(492e-15));
        assert_eq!(parse_spice_value("100"), Some(100.0));
        assert_eq!(parse_spice_value("1meg"), Some(1e6));
        assert_eq!(parse_spice_value("2n"), Some(2e-9));
        let five_micro = parse_spice_value("5u").unwrap();
        assert!((five_micro - 5e-6).abs() < 1e-18);
        assert_eq!(parse_spice_value("7t"), Some(7e12));
        // Exponent forms must not be eaten by suffix logic.
        assert_eq!(parse_spice_value("1e-3"), Some(1e-3));
        assert_eq!(parse_spice_value("2.5E6"), Some(2.5e6));
        assert_eq!(parse_spice_value(""), None);
        assert_eq!(parse_spice_value("x1"), None);
    }

    #[test]
    fn parses_all_supported_cards() {
        let deck = "* title here\n\
                    V1 vdd 0 DC 1.0\n\
                    I1 0 load PWL(0 0 1n 1m)\n\
                    R1 vdd load 1k\n\
                    L1 load tail 1n\n\
                    C1 tail 0 15.3f\n\
                    .end\n";
        let parsed = parse_spice_deck(deck).unwrap();
        assert_eq!(parsed.title, "title here");
        assert_eq!(parsed.circuit.elements().len(), 5);
        assert_eq!(parsed.circuit.node_count(), 4); // ground, vdd, load, tail
        assert!(matches!(
            parsed.circuit.elements()[2],
            Element::Resistor { ohms, .. } if (ohms - 1000.0).abs() < 1e-12
        ));
    }

    #[test]
    fn pwl_source_round_trips_values() {
        let parsed = parse_spice_deck("V1 a 0 PWL(0 0 1p 1 2p 0.5)\nR1 a 0 1\n").unwrap();
        let Element::VoltageSource { waveform, .. } = &parsed.circuit.elements()[0] else {
            panic!("expected voltage source");
        };
        assert_eq!(
            *waveform,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-12, 1.0), (2e-12, 0.5)])
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(
            parse_spice_deck("R1 a\n").unwrap_err(),
            ParseDeckError::TooFewFields { line: 1 }
        );
        assert!(matches!(
            parse_spice_deck("* t\nR1 a 0 bogus\n").unwrap_err(),
            ParseDeckError::BadValue { line: 2, .. }
        ));
        assert!(matches!(
            parse_spice_deck("Q1 a 0 b model\n").unwrap_err(),
            ParseDeckError::Unsupported { line: 1, .. }
        ));
        assert!(matches!(
            parse_spice_deck("V1 a 0 PWL(0 0 1p)\n").unwrap_err(),
            ParseDeckError::BadSource { line: 1 }
        ));
        assert!(matches!(
            parse_spice_deck("R1 a a 1k\n").unwrap_err(),
            ParseDeckError::Build { line: 1, .. }
        ));
    }

    #[test]
    fn bare_value_sources_are_dc() {
        let parsed = parse_spice_deck("V1 a 0 3.3\nR1 a 0 1\n").unwrap();
        assert!(matches!(
            parsed.circuit.elements()[0],
            Element::VoltageSource { waveform: Waveform::Dc(v), .. } if (v - 3.3).abs() < 1e-12
        ));
    }
}
