//! RC(L) interconnect extraction for routing graphs.
//!
//! This crate turns a [`RoutingGraph`](ntr_graph::RoutingGraph) into the
//! linear circuit the paper feeds to SPICE:
//!
//! - each wire becomes a chain of distributed **π-segments** (series
//!   resistance, optional series inductance, half the segment capacitance
//!   to ground at each end),
//! - the net's source pin is driven through the **driver resistance** by a
//!   step voltage source,
//! - every sink pin carries the **sink loading capacitance**.
//!
//! The electrical constants live in [`Technology`]; [`Technology::date94`]
//! is exactly Table 1 of the paper (0.8 µm CMOS: 100 Ω driver,
//! 0.03 Ω/µm, 0.352 fF/µm, 492 fH/µm, 15.3 fF sink loads).
//!
//! The output [`Circuit`] is consumed by the `ntr-spice` transient
//! simulator, and can be exported as a SPICE deck with
//! [`to_spice_deck`] for cross-checking against an external simulator.
//!
//! # Examples
//!
//! ```
//! use ntr_circuit::{extract, ExtractOptions, Technology};
//! use ntr_geom::{Net, Point};
//! use ntr_graph::prim_mst;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(1000.0, 0.0)])?;
//! let mst = prim_mst(&net);
//! let tech = Technology::date94();
//! let extracted = extract(&mst, &tech, &ExtractOptions::default())?;
//! // 1 mm of wire: 30 ohms, 0.352 pF + the sink load.
//! assert!(extracted.circuit.node_count() > 2);
//! # Ok(())
//! # }
//! ```

mod circuit;
mod deck;
mod extract;
mod parse;
mod tech;

pub use circuit::{BuildCircuitError, Circuit, Element, Waveform};
pub use deck::to_spice_deck;
pub use extract::{
    circuit_node_of, extract, CandidateWire, ExtractError, ExtractOptions, Extracted, Segmentation,
};
pub use parse::{parse_spice_deck, parse_spice_value, ParseDeckError, ParsedDeck};
pub use tech::Technology;
