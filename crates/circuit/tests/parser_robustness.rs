//! Robustness tests: the text parsers must return errors, never panic,
//! on arbitrary input — and must round-trip everything this workspace
//! generates.

use ntr_circuit::{parse_spice_deck, parse_spice_value};
use ntr_geom::{net_from_str, Netlist};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text never panics the deck parser.
    #[test]
    fn deck_parser_never_panics(text in "\\PC*{0,200}") {
        let _ = parse_spice_deck(&text);
    }

    /// Arbitrary "almost-deck" lines never panic the deck parser.
    #[test]
    fn structured_junk_never_panics(
        kind in "[RCLVIQXq.*#]",
        a in "[a-z0-9]{0,4}",
        b in "[a-z0-9]{0,4}",
        v in "[0-9a-zA-Z.+-]{0,8}",
    ) {
        let deck = format!("{kind}1 {a} {b} {v}\n");
        let _ = parse_spice_deck(&deck);
    }

    /// Arbitrary tokens never panic the value parser, and valid floats
    /// always parse to themselves.
    #[test]
    fn value_parser_total(token in "\\PC{0,12}") {
        let _ = parse_spice_value(&token);
    }

    #[test]
    fn plain_floats_parse_exactly(v in -1e12f64..1e12) {
        let parsed = parse_spice_value(&format!("{v}")).unwrap();
        prop_assert!((parsed - v).abs() <= 1e-9 * v.abs());
    }

    /// Net and netlist parsers are total functions on arbitrary text.
    #[test]
    fn net_parsers_never_panic(text in "\\PC*{0,200}") {
        let _ = net_from_str(&text);
        let _ = Netlist::from_text(&text);
    }
}
