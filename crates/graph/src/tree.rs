use crate::{EdgeId, NodeId, NotATreeError, RoutingGraph};

/// A validated, rooted view of a [`RoutingGraph`] that is a spanning tree.
///
/// The Elmore delay model is defined only for trees; [`TreeView`] is the
/// proof-carrying handle the Elmore engine (and the tree-based heuristics
/// H2/H3) require. It is rooted at the graph's source and caches the
/// parent relation, a root-first traversal order, and root-to-node
/// pathlengths.
///
/// The view borrows the graph immutably, so the topology cannot change
/// underneath it.
///
/// # Examples
///
/// ```
/// use ntr_geom::{Net, Point};
/// use ntr_graph::{prim_mst, TreeView};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(4.0, 0.0), Point::new(4.0, 3.0)])?;
/// let mst = prim_mst(&net);
/// let tree = TreeView::new(&mst)?;
/// let far = mst.node_ids().last().unwrap();
/// assert_eq!(tree.path_length(far), 7.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TreeView<'g> {
    graph: &'g RoutingGraph,
    parent: Vec<Option<(NodeId, EdgeId)>>,
    order: Vec<NodeId>,
    depth_length: Vec<f64>,
}

impl<'g> TreeView<'g> {
    /// Validates that `graph` is a spanning tree and builds the rooted view.
    ///
    /// # Errors
    ///
    /// Returns [`NotATreeError::Disconnected`] when some node is not
    /// reachable from the source and [`NotATreeError::HasCycle`] when the
    /// edge count exceeds `nodes − 1`.
    pub fn new(graph: &'g RoutingGraph) -> Result<Self, NotATreeError> {
        let n = graph.node_count();
        if graph.edge_count() + 1 > n {
            return Err(NotATreeError::HasCycle {
                edges: graph.edge_count(),
                nodes: n,
            });
        }
        let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        let mut depth_length = vec![0.0; n];
        let mut seen = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let root = graph.source();
        seen[root.index()] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &(v, e) in graph.neighbors(u).expect("bfs visits valid nodes") {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    parent[v.index()] = Some((u, e));
                    depth_length[v.index()] = depth_length[u.index()]
                        + graph.edge(e).expect("adjacency lists live edges").length();
                    queue.push_back(v);
                }
            }
        }
        if order.len() != n {
            return Err(NotATreeError::Disconnected {
                reachable: order.len(),
                total: n,
            });
        }
        Ok(Self {
            graph,
            parent,
            order,
            depth_length,
        })
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &'g RoutingGraph {
        self.graph
    }

    /// The root (the net source).
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.graph.source()
    }

    /// Parent of `n` and the connecting edge, or `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of the underlying graph.
    #[must_use]
    pub fn parent(&self, n: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent[n.index()]
    }

    /// Nodes in root-first (BFS) order: every node appears after its parent.
    #[must_use]
    pub fn root_first_order(&self) -> &[NodeId] {
        &self.order
    }

    /// Nodes in leaves-first order: every node appears before its parent.
    pub fn leaves_first_order(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().rev().copied()
    }

    /// Wirelength of the unique root-to-`n` path — the paper's
    /// "pathlength" used by heuristic H3.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of the underlying graph.
    #[must_use]
    pub fn path_length(&self, n: NodeId) -> f64 {
        self.depth_length[n.index()]
    }

    /// The tree radius: the longest root-to-node pathlength.
    #[must_use]
    pub fn radius(&self) -> f64 {
        self.depth_length.iter().copied().fold(0.0, f64::max)
    }

    /// The nodes of the unique path from the root to `n`, inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of the underlying graph.
    #[must_use]
    pub fn path_from_root(&self, n: NodeId) -> Vec<NodeId> {
        let mut path = vec![n];
        let mut cur = n;
        while let Some((p, _)) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim_mst;
    use ntr_geom::{Net, Point};

    fn chain() -> RoutingGraph {
        let net = Net::new(
            Point::new(0.0, 0.0),
            vec![
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
                Point::new(30.0, 0.0),
            ],
        )
        .unwrap();
        prim_mst(&net)
    }

    #[test]
    fn orders_respect_parenthood() {
        let g = chain();
        let t = TreeView::new(&g).unwrap();
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.node_count()];
            for (i, n) in t.root_first_order().iter().enumerate() {
                pos[n.index()] = i;
            }
            pos
        };
        for n in g.node_ids() {
            if let Some((p, _)) = t.parent(n) {
                assert!(pos[p.index()] < pos[n.index()]);
            }
        }
        let leaves_first: Vec<NodeId> = t.leaves_first_order().collect();
        assert_eq!(leaves_first.len(), g.node_count());
        assert_eq!(*leaves_first.last().unwrap(), t.root());
    }

    #[test]
    fn path_lengths_accumulate() {
        let g = chain();
        let t = TreeView::new(&g).unwrap();
        assert_eq!(t.path_length(t.root()), 0.0);
        assert_eq!(t.path_length(NodeId(3)), 30.0);
        assert_eq!(t.radius(), 30.0);
        assert_eq!(
            t.path_from_root(NodeId(3)),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn cyclic_graph_is_rejected() {
        let mut g = chain();
        g.add_edge(NodeId(0), NodeId(3)).unwrap();
        assert!(matches!(
            TreeView::new(&g),
            Err(NotATreeError::HasCycle { .. })
        ));
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let net = Net::new(
            Point::new(0.0, 0.0),
            vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)],
        )
        .unwrap();
        let mut g = RoutingGraph::from_net(&net);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(
            TreeView::new(&g),
            Err(NotATreeError::Disconnected { .. })
        ));
    }

    #[test]
    fn root_has_no_parent() {
        let g = chain();
        let t = TreeView::new(&g).unwrap();
        assert!(t.parent(t.root()).is_none());
    }
}
