use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{GraphError, NodeId, RoutingGraph};

/// Entry in the Dijkstra priority queue, ordered by smallest distance.
#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want the min distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest-path distances (by wirelength) from `from` to every node of the
/// graph, `f64::INFINITY` for unreachable nodes.
///
/// Works on arbitrary routing graphs, including cyclic ones; in a tree the
/// distance to a node is exactly the paper's "pathlength".
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfRange`] when `from` is not a node of the
/// graph.
///
/// # Examples
///
/// ```
/// use ntr_geom::{Net, Point};
/// use ntr_graph::{prim_mst, shortest_path_lengths};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(5.0, 0.0), Point::new(5.0, 5.0)])?;
/// let mst = prim_mst(&net);
/// let dist = shortest_path_lengths(&mst, mst.source())?;
/// assert_eq!(dist[2], 10.0);
/// # Ok(())
/// # }
/// ```
pub fn shortest_path_lengths(graph: &RoutingGraph, from: NodeId) -> Result<Vec<f64>, GraphError> {
    graph.point(from)?;
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[from.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        dist: 0.0,
        node: from,
    });
    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for &(v, e) in graph.neighbors(u)? {
            let nd = d + graph.edge(e)?.length();
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_geom::{Net, Point};

    #[test]
    fn shortcut_edge_shortens_distance() {
        let net = Net::new(
            Point::new(0.0, 0.0),
            vec![Point::new(10.0, 0.0), Point::new(10.0, 10.0)],
        )
        .unwrap();
        let mut g = crate::prim_mst(&net);
        let far = NodeId(2);
        let chained = shortest_path_lengths(&g, g.source()).unwrap()[2];
        assert_eq!(chained, 20.0);
        g.add_edge(g.source(), far).unwrap();
        let direct = shortest_path_lengths(&g, g.source()).unwrap()[2];
        assert_eq!(direct, 20.0); // Manhattan direct == chained here
        assert!(direct <= chained);
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(1.0, 0.0)]).unwrap();
        let g = crate::RoutingGraph::from_net(&net);
        let dist = shortest_path_lengths(&g, g.source()).unwrap();
        assert_eq!(dist[0], 0.0);
        assert!(dist[1].is_infinite());
    }

    #[test]
    fn foreign_source_is_an_error() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(1.0, 0.0)]).unwrap();
        let g = crate::RoutingGraph::from_net(&net);
        assert!(shortest_path_lengths(&g, NodeId(7)).is_err());
    }
}
