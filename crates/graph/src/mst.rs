use ntr_geom::{Net, Point};

use crate::{NodeId, RoutingGraph};

/// Builds the minimum spanning tree of `net` under the Manhattan metric
/// using Prim's algorithm (O(n²), exact).
///
/// The MST is the starting topology of the LDRG algorithm and the
/// normalization baseline of every table in the paper.
///
/// # Examples
///
/// ```
/// use ntr_geom::{Net, Point};
/// use ntr_graph::prim_mst;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(
///     Point::new(0.0, 0.0),
///     vec![Point::new(10.0, 0.0), Point::new(20.0, 0.0)],
/// )?;
/// let mst = prim_mst(&net);
/// assert!(mst.is_tree());
/// assert_eq!(mst.total_cost(), 20.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn prim_mst(net: &Net) -> RoutingGraph {
    let mut graph = RoutingGraph::from_net(net);
    for (a, b) in prim_mst_edges(net.pins()) {
        graph
            .add_edge(NodeId(a), NodeId(b))
            .expect("mst edges connect valid distinct nodes");
    }
    graph
}

/// Returns the MST edges over an arbitrary point set as index pairs
/// `(parent, child)` into `points`, rooted at point 0.
///
/// Returns an empty vector for fewer than two points.
#[must_use]
pub fn prim_mst_edges(points: &[Point]) -> Vec<(usize, usize)> {
    let n = points.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    in_tree[0] = true;
    for j in 1..n {
        best_dist[j] = points[0].manhattan(points[j]);
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let mut u = usize::MAX;
        let mut du = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best_dist[j] < du {
                du = best_dist[j];
                u = j;
            }
        }
        debug_assert!(u != usize::MAX, "point set is always fully connectable");
        in_tree[u] = true;
        edges.push((best_from[u], u));
        for j in 0..n {
            if !in_tree[j] {
                let d = points[u].manhattan(points[j]);
                if d < best_dist[j] {
                    best_dist[j] = d;
                    best_from[j] = u;
                }
            }
        }
    }
    edges
}

/// Total Manhattan MST cost of a point set, without materializing a graph.
///
/// This is the inner evaluation of the Iterated 1-Steiner heuristic, which
/// calls it once per Hanan-grid candidate per round.
#[must_use]
pub fn prim_mst_cost(points: &[Point]) -> f64 {
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    in_tree[0] = true;
    for j in 1..n {
        best_dist[j] = points[0].manhattan(points[j]);
    }
    let mut total = 0.0;
    for _ in 1..n {
        let mut u = usize::MAX;
        let mut du = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best_dist[j] < du {
                du = best_dist[j];
                u = j;
            }
        }
        in_tree[u] = true;
        total += du;
        for j in 0..n {
            if !in_tree[j] {
                let d = points[u].manhattan(points[j]);
                if d < best_dist[j] {
                    best_dist[j] = d;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collinear_points_form_a_chain() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(30.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
        ];
        assert_eq!(prim_mst_cost(&pts), 30.0);
        let net = Net::from_points(pts).unwrap();
        let mst = prim_mst(&net);
        assert!(mst.is_tree());
        assert_eq!(mst.total_cost(), 30.0);
    }

    #[test]
    fn mst_cost_matches_edge_list() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 40.0),
            Point::new(5.0, 90.0),
            Point::new(60.0, 60.0),
            Point::new(90.0, 5.0),
        ];
        let edges = prim_mst_edges(&pts);
        assert_eq!(edges.len(), 4);
        let listed: f64 = edges.iter().map(|&(a, b)| pts[a].manhattan(pts[b])).sum();
        assert!((listed - prim_mst_cost(&pts)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_point_sets() {
        assert_eq!(prim_mst_cost(&[]), 0.0);
        assert_eq!(prim_mst_cost(&[Point::origin()]), 0.0);
        assert!(prim_mst_edges(&[Point::origin()]).is_empty());
    }

    #[test]
    fn square_mst_uses_three_sides() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ];
        assert_eq!(prim_mst_cost(&pts), 30.0);
    }
}
