use crate::{shortest_path_lengths, GraphError, RoutingGraph};

/// Summary metrics of a routing topology.
///
/// These are the classical quantities of the performance-driven routing
/// literature the paper builds on: total **cost** (wirelength), **radius**
/// (longest source–sink shortest path — the quantity the cost/radius
/// tradeoff constructions of Cong et al. bound), the **cycle count**
/// (`|E| − |N| + 1`, zero exactly for trees — the paper's entire point is
/// letting this exceed zero), and the **mean detour** (ratio of routed
/// source–sink distance to the direct Manhattan distance, 1.0 = every
/// sink connected as directly as geometrically possible).
///
/// # Examples
///
/// ```
/// use ntr_geom::{Net, Point};
/// use ntr_graph::{prim_mst, GraphMetrics};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(10.0, 0.0), Point::new(20.0, 0.0)])?;
/// let mut graph = prim_mst(&net);
/// let tree = GraphMetrics::compute(&graph)?;
/// assert_eq!(tree.cycles, 0);
/// assert_eq!(tree.radius, 20.0);
/// let far = graph.node_ids().last().unwrap();
/// graph.add_edge(graph.source(), far)?;
/// let cyclic = GraphMetrics::compute(&graph)?;
/// assert_eq!(cyclic.cycles, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphMetrics {
    /// Total wirelength (µm).
    pub cost: f64,
    /// Longest source-to-node shortest-path distance (µm).
    pub radius: f64,
    /// Independent cycle count `|E| − |N| + 1` (0 for trees).
    pub cycles: usize,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Mean over sinks of `shortest_path(source, sink) / direct_distance`.
    pub mean_detour: f64,
}

impl GraphMetrics {
    /// Computes the metrics of a connected routing graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] when the graph is malformed (propagated from
    /// traversal); an unconnected graph yields infinite radius/detour
    /// rather than an error, letting callers detect it.
    pub fn compute(graph: &RoutingGraph) -> Result<Self, GraphError> {
        let dist = shortest_path_lengths(graph, graph.source())?;
        let radius = dist.iter().copied().fold(0.0, f64::max);
        let mut max_degree = 0;
        for n in graph.node_ids() {
            max_degree = max_degree.max(graph.degree(n)?);
        }
        let source_pt = graph.point(graph.source())?;
        let mut detour_sum = 0.0;
        let mut sink_count = 0usize;
        for sink in graph.sink_nodes() {
            let direct = source_pt.manhattan(graph.point(sink)?);
            if direct > 0.0 {
                detour_sum += dist[sink.index()] / direct;
                sink_count += 1;
            }
        }
        Ok(Self {
            cost: graph.total_cost(),
            radius,
            cycles: (graph.edge_count() + 1).saturating_sub(graph.node_count()),
            max_degree,
            mean_detour: if sink_count == 0 {
                1.0
            } else {
                detour_sum / sink_count as f64
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim_mst;
    use ntr_geom::{Net, Point};

    fn l_net() -> Net {
        Net::new(
            Point::new(0.0, 0.0),
            vec![Point::new(10.0, 0.0), Point::new(10.0, 10.0)],
        )
        .unwrap()
    }

    #[test]
    fn tree_metrics() {
        let mst = prim_mst(&l_net());
        let m = GraphMetrics::compute(&mst).unwrap();
        assert_eq!(m.cycles, 0);
        assert_eq!(m.cost, 20.0);
        assert_eq!(m.radius, 20.0);
        assert_eq!(m.max_degree, 2);
        // Sink 1 direct, sink 2 detour 20/20 = 1.0.
        assert!((m.mean_detour - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shortcut_reduces_radius_and_adds_cycle() {
        let mut g = prim_mst(&l_net());
        let far = g.node_ids().last().unwrap();
        g.add_edge(g.source(), far).unwrap();
        let m = GraphMetrics::compute(&g).unwrap();
        assert_eq!(m.cycles, 1);
        assert_eq!(m.radius, 20.0); // direct Manhattan == old path here
        assert!(m.cost > 20.0);
    }

    #[test]
    fn disconnected_graph_reports_infinite_radius() {
        let g = crate::RoutingGraph::from_net(&l_net());
        let m = GraphMetrics::compute(&g).unwrap();
        assert!(m.radius.is_infinite());
    }

    #[test]
    fn detour_exceeds_one_on_indirect_routes() {
        // U-shaped chain: the last sink is near the source geometrically
        // but the MST routes it the long way around.
        let net = Net::new(
            Point::new(0.0, 0.0),
            vec![
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(2.0, 10.0),
            ],
        )
        .unwrap();
        let mst = prim_mst(&net);
        let m = GraphMetrics::compute(&mst).unwrap();
        // (2,10): 28 um of wire vs 12 um direct => detour 2.33; mean 1.44.
        assert!(m.mean_detour > 1.3, "detour {}", m.mean_detour);
    }
}
