use std::fmt::Write as _;

use ntr_geom::BoundingBox;

use crate::{EdgeId, NodeKind, RoutingGraph};

/// Styling options for [`render_svg`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvgOptions {
    /// Output image width in pixels (height follows the aspect ratio).
    pub width_px: f64,
    /// Edges drawn highlighted (e.g. the wires LDRG added), in red.
    pub highlight: Vec<EdgeId>,
    /// Draw edges as rectilinear L-shapes (horizontal then vertical), the
    /// way the paper's figures depict Manhattan wires. When `false`, edges
    /// are straight lines.
    pub rectilinear: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width_px: 480.0,
            highlight: Vec::new(),
            rectilinear: true,
        }
    }
}

/// Renders a routing graph as an SVG drawing in the visual language of the
/// paper's figures: the source as a filled black circle, sinks as hollow
/// circles, Steiner points as small squares, wires as rectilinear paths,
/// and highlighted (added) wires in red.
///
/// # Examples
///
/// ```
/// use ntr_geom::{Net, Point};
/// use ntr_graph::{prim_mst, render_svg, SvgOptions};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(100.0, 50.0)])?;
/// let svg = render_svg(&prim_mst(&net), &SvgOptions::default());
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("<circle"));
/// assert!(svg.trim_end().ends_with("</svg>"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn render_svg(graph: &RoutingGraph, opts: &SvgOptions) -> String {
    let points: Vec<_> = graph
        .node_ids()
        .map(|n| graph.point(n).expect("iterating own nodes"))
        .collect();
    let bb = BoundingBox::of_points(points.iter().copied())
        .unwrap_or_else(|| BoundingBox::new(ntr_geom::Point::origin(), ntr_geom::Point::origin()));
    let margin = 0.06 * bb.half_perimeter().max(1.0);
    let min_x = bb.min().x - margin;
    let min_y = bb.min().y - margin;
    let span_x = bb.width() + 2.0 * margin;
    let span_y = bb.height() + 2.0 * margin;
    let scale = opts.width_px / span_x.max(1e-9);
    let height_px = span_y * scale;
    // SVG y grows downward; flip so the layout reads like a floorplan.
    let tx = |x: f64| (x - min_x) * scale;
    let ty = |y: f64| height_px - (y - min_y) * scale;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"0 0 {:.1} {:.1}\">",
        opts.width_px, height_px, opts.width_px, height_px
    );
    let _ = writeln!(
        out,
        "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>"
    );

    // Wires first so pins draw on top.
    for (id, edge) in graph.edges() {
        let a = points[edge.a().index()];
        let b = points[edge.b().index()];
        let highlighted = opts.highlight.contains(&id);
        let stroke = if highlighted { "#cc2222" } else { "#222222" };
        let width = 1.2 + edge.width().ln_1p();
        if opts.rectilinear && a.x != b.x && a.y != b.y {
            let _ = writeln!(
                out,
                "  <polyline points=\"{:.1},{:.1} {:.1},{:.1} {:.1},{:.1}\" fill=\"none\" \
                 stroke=\"{stroke}\" stroke-width=\"{width:.1}\"/>",
                tx(a.x),
                ty(a.y),
                tx(b.x),
                ty(a.y),
                tx(b.x),
                ty(b.y)
            );
        } else {
            let _ = writeln!(
                out,
                "  <line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" \
                 stroke=\"{stroke}\" stroke-width=\"{width:.1}\"/>",
                tx(a.x),
                ty(a.y),
                tx(b.x),
                ty(b.y)
            );
        }
    }

    for node in graph.node_ids() {
        let p = points[node.index()];
        match graph.kind(node).expect("iterating own nodes") {
            NodeKind::Pin { pin: 0 } => {
                let _ = writeln!(
                    out,
                    "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"6\" fill=\"black\">\
                     <title>source n0</title></circle>",
                    tx(p.x),
                    ty(p.y)
                );
            }
            NodeKind::Pin { pin } => {
                let _ = writeln!(
                    out,
                    "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"5\" fill=\"white\" \
                     stroke=\"black\" stroke-width=\"1.5\"><title>sink n{pin}</title></circle>",
                    tx(p.x),
                    ty(p.y)
                );
            }
            NodeKind::Steiner => {
                let _ = writeln!(
                    out,
                    "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"7\" height=\"7\" fill=\"#666666\">\
                     <title>steiner</title></rect>",
                    tx(p.x) - 3.5,
                    ty(p.y) - 3.5
                );
            }
        }
    }
    let _ = writeln!(out, "</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim_mst;
    use ntr_geom::{Net, Point};

    fn sample() -> RoutingGraph {
        let net = Net::new(
            Point::new(0.0, 0.0),
            vec![Point::new(100.0, 0.0), Point::new(100.0, 80.0)],
        )
        .unwrap();
        prim_mst(&net)
    }

    #[test]
    fn svg_contains_all_nodes_and_edges() {
        let g = sample();
        let svg = render_svg(&g, &SvgOptions::default());
        assert_eq!(svg.matches("<circle").count(), 3);
        // Two edges: one straight (shared y), one straight (shared x).
        assert_eq!(
            svg.matches("<line").count() + svg.matches("<polyline").count(),
            2
        );
        assert!(svg.contains("source n0"));
    }

    #[test]
    fn highlight_marks_added_edges_red() {
        let mut g = sample();
        let far = g.node_ids().last().unwrap();
        let added = g.add_edge(g.source(), far).unwrap();
        let svg = render_svg(
            &g,
            &SvgOptions {
                highlight: vec![added],
                ..Default::default()
            },
        );
        assert!(svg.contains("#cc2222"));
        // Diagonal edge rendered as an L in rectilinear mode.
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn steiner_nodes_are_squares() {
        let mut g = sample();
        g.add_steiner(Point::new(50.0, 40.0));
        let svg = render_svg(&g, &SvgOptions::default());
        assert!(svg.contains("steiner"));
        assert!(svg.matches("<rect").count() >= 2); // background + steiner
    }

    #[test]
    fn straight_line_mode_avoids_polylines() {
        let mut g = sample();
        let far = g.node_ids().last().unwrap();
        g.add_edge(g.source(), far).unwrap();
        let svg = render_svg(
            &g,
            &SvgOptions {
                rectilinear: false,
                ..Default::default()
            },
        );
        assert_eq!(svg.matches("<polyline").count(), 0);
    }
}
