use ntr_geom::{Net, Point};

use crate::GraphError;

/// Identifier of a node in a [`RoutingGraph`].
///
/// Node 0 is always the net's source pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an edge in a [`RoutingGraph`].
///
/// Edge ids are stable across removals (removed edges leave a tombstone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) usize);

impl EdgeId {
    /// The dense index of this edge slot.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a routing-graph node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A pin of the signal net; `pin` is the index into the net's pin list
    /// (0 = source).
    Pin {
        /// Index into [`Net::pins`](ntr_geom::Net::pins).
        pin: usize,
    },
    /// A Steiner (via) node introduced by a Steiner-tree or SERT algorithm.
    Steiner,
}

impl NodeKind {
    /// True for pin nodes.
    #[must_use]
    pub fn is_pin(self) -> bool {
        matches!(self, NodeKind::Pin { .. })
    }
}

/// A wire between two nodes.
///
/// The `length` is the Manhattan distance between the endpoints (the
/// paper's edge cost `d_ij`); `width` is a multiplier on the nominal wire
/// width, used by the wire-sized (WSORG) extension. Width scales electrical
/// properties — resistance as `1/width`, capacitance as `width` — but not
/// the routing cost reported by [`RoutingGraph::total_cost`], which follows
/// the paper in counting wirelength. Use
/// [`RoutingGraph::total_wire_area`] for a width-weighted cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    a: NodeId,
    b: NodeId,
    length: f64,
    width: f64,
}

impl Edge {
    /// First endpoint.
    #[must_use]
    pub fn a(&self) -> NodeId {
        self.a
    }

    /// Second endpoint.
    #[must_use]
    pub fn b(&self) -> NodeId {
        self.b
    }

    /// Manhattan length in µm.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Width multiplier (1.0 = nominal).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The endpoint opposite to `n`, or `None` when `n` is not an endpoint.
    #[must_use]
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// A routing topology over a signal net: the graph `G = (N, E)` of the
/// Optimal Routing Graph (ORG) problem.
///
/// Nodes are net pins (node 0 = source) plus optional Steiner nodes; edges
/// carry Manhattan length and a width multiplier. Cycles are allowed —
/// that is the premise of non-tree routing.
///
/// # Examples
///
/// ```
/// use ntr_geom::{Net, Point};
/// use ntr_graph::RoutingGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(10.0, 0.0)])?;
/// let mut g = RoutingGraph::from_net(&net);
/// let (s, t) = (g.source(), g.node_ids().nth(1).unwrap());
/// let e = g.add_edge(s, t)?;
/// assert_eq!(g.edge(e)?.length(), 10.0);
/// assert!(g.is_tree());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingGraph {
    points: Vec<Point>,
    kinds: Vec<NodeKind>,
    edges: Vec<Option<Edge>>,
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    live_edges: usize,
    pin_count: usize,
}

impl RoutingGraph {
    /// Creates an edgeless routing graph whose nodes are the pins of `net`
    /// (node `i` = pin `i`, so node 0 is the source).
    #[must_use]
    pub fn from_net(net: &Net) -> Self {
        let points: Vec<Point> = net.pins().to_vec();
        let kinds = (0..points.len()).map(|pin| NodeKind::Pin { pin }).collect();
        let n = points.len();
        Self {
            points,
            kinds,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            live_edges: 0,
            pin_count: n,
        }
    }

    /// A copy of this graph with the same nodes (pins and Steiner points)
    /// but no edges — the blank slate for exhaustive-topology searches.
    #[must_use]
    pub fn without_edges(&self) -> Self {
        Self {
            points: self.points.clone(),
            kinds: self.kinds.clone(),
            edges: Vec::new(),
            adj: vec![Vec::new(); self.points.len()],
            live_edges: 0,
            pin_count: self.pin_count,
        }
    }

    /// The source node (always node 0).
    #[must_use]
    pub fn source(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes (pins + Steiner nodes).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Number of pin nodes (the original net size).
    #[must_use]
    pub fn pin_count(&self) -> usize {
        self.pin_count
    }

    /// Number of live (non-removed) edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Iterator over all node ids, source first.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.points.len()).map(NodeId)
    }

    /// Iterator over the pin nodes only (node id, pin index).
    pub fn pin_nodes(&self) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.kinds.iter().enumerate().filter_map(|(i, k)| match k {
            NodeKind::Pin { pin } => Some((NodeId(i), *pin)),
            NodeKind::Steiner => None,
        })
    }

    /// Iterator over the sink pin nodes (every pin except the source).
    pub fn sink_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.pin_nodes()
            .filter(|&(n, _)| n != NodeId(0))
            .map(|(n, _)| n)
    }

    /// Iterator over live edges as `(EdgeId, &Edge)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (EdgeId(i), e)))
    }

    /// The location of node `n`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for a foreign node id.
    pub fn point(&self, n: NodeId) -> Result<Point, GraphError> {
        self.check_node(n)?;
        Ok(self.points[n.0])
    }

    /// The kind of node `n`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for a foreign node id.
    pub fn kind(&self, n: NodeId) -> Result<NodeKind, GraphError> {
        self.check_node(n)?;
        Ok(self.kinds[n.0])
    }

    /// The edge stored at `e`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfRange`] for a foreign id and
    /// [`GraphError::EdgeRemoved`] for a tombstoned one.
    pub fn edge(&self, e: EdgeId) -> Result<&Edge, GraphError> {
        match self.edges.get(e.0) {
            None => Err(GraphError::EdgeOutOfRange {
                edge: e,
                len: self.edges.len(),
            }),
            Some(None) => Err(GraphError::EdgeRemoved { edge: e }),
            Some(Some(edge)) => Ok(edge),
        }
    }

    /// Adds a Steiner node at `p` and returns its id.
    pub fn add_steiner(&mut self, p: Point) -> NodeId {
        let id = NodeId(self.points.len());
        self.points.push(p);
        self.kinds.push(NodeKind::Steiner);
        self.adj.push(Vec::new());
        id
    }

    /// Adds a nominal-width edge between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] when `a == b` and
    /// [`GraphError::NodeOutOfRange`] for foreign ids. Parallel edges are
    /// allowed (the paper's wire-sizing discussion treats parallel wires as
    /// one wider wire; see [`RoutingGraph::merge_parallel_edges`]).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<EdgeId, GraphError> {
        self.add_edge_with_width(a, b, 1.0)
    }

    /// Adds an edge with an explicit width multiplier.
    ///
    /// # Errors
    ///
    /// As [`RoutingGraph::add_edge`], plus [`GraphError::InvalidWidth`] for
    /// non-positive or non-finite widths.
    pub fn add_edge_with_width(
        &mut self,
        a: NodeId,
        b: NodeId,
        width: f64,
    ) -> Result<EdgeId, GraphError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        if !(width.is_finite() && width > 0.0) {
            return Err(GraphError::InvalidWidth { width });
        }
        let length = self.points[a.0].manhattan(self.points[b.0]);
        let id = EdgeId(self.edges.len());
        self.edges.push(Some(Edge {
            a,
            b,
            length,
            width,
        }));
        self.adj[a.0].push((b, id));
        self.adj[b.0].push((a, id));
        self.live_edges += 1;
        Ok(id)
    }

    /// Moves node `n` to `p`, recomputing the Manhattan length of every
    /// live incident edge. Widths and connectivity are untouched, so a
    /// move never changes the circuit's sparsity *structure* — only its
    /// element values — which is what lets an incremental rerouting
    /// session answer a `move_pin` delta with a same-pattern numeric
    /// refactorization instead of a fresh symbolic analysis.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for a foreign node id.
    pub fn move_node(&mut self, n: NodeId, p: Point) -> Result<(), GraphError> {
        self.check_node(n)?;
        self.points[n.0] = p;
        let incident: Vec<EdgeId> = self.adj[n.0].iter().map(|&(_, e)| e).collect();
        for e in incident {
            if let Some(Some(edge)) = self.edges.get_mut(e.0) {
                edge.length = self.points[edge.a.0].manhattan(self.points[edge.b.0]);
            }
        }
        Ok(())
    }

    /// Removes edge `e`, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfRange`] or [`GraphError::EdgeRemoved`].
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<Edge, GraphError> {
        let edge = *self.edge(e)?;
        self.edges[e.0] = None;
        self.adj[edge.a.0].retain(|&(_, id)| id != e);
        self.adj[edge.b.0].retain(|&(_, id)| id != e);
        self.live_edges -= 1;
        Ok(edge)
    }

    /// Sets the width multiplier of edge `e`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidWidth`] for non-positive widths, and the
    /// usual edge-id errors.
    pub fn set_width(&mut self, e: EdgeId, width: f64) -> Result<(), GraphError> {
        if !(width.is_finite() && width > 0.0) {
            return Err(GraphError::InvalidWidth { width });
        }
        self.edge(e)?;
        if let Some(Some(edge)) = self.edges.get_mut(e.0) {
            edge.width = width;
        }
        Ok(())
    }

    /// True when a live edge directly connects `a` and `b`.
    #[must_use]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj
            .get(a.0)
            .is_some_and(|nbrs| nbrs.iter().any(|&(n, _)| n == b))
    }

    /// Neighbors of `n` as `(neighbor, edge)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for a foreign node id.
    pub fn neighbors(&self, n: NodeId) -> Result<&[(NodeId, EdgeId)], GraphError> {
        self.check_node(n)?;
        Ok(&self.adj[n.0])
    }

    /// Degree of node `n`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for a foreign node id.
    pub fn degree(&self, n: NodeId) -> Result<usize, GraphError> {
        Ok(self.neighbors(n)?.len())
    }

    /// Total wirelength: the sum of live edge lengths, the paper's routing
    /// cost.
    #[must_use]
    pub fn total_cost(&self) -> f64 {
        self.edges().map(|(_, e)| e.length).sum()
    }

    /// Width-weighted wirelength (`Σ length × width`), the area cost
    /// relevant under wire sizing.
    #[must_use]
    pub fn total_wire_area(&self) -> f64 {
        self.edges().map(|(_, e)| e.length * e.width).sum()
    }

    /// True when every node is reachable from the source via live edges.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.reachable_from_source() == self.node_count()
    }

    /// Number of nodes reachable from the source.
    #[must_use]
    pub fn reachable_from_source(&self) -> usize {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 0;
        while let Some(u) = stack.pop() {
            count += 1;
            for &(v, _) in &self.adj[u.0] {
                if !seen[v.0] {
                    seen[v.0] = true;
                    stack.push(v);
                }
            }
        }
        count
    }

    /// True when the graph is a spanning tree (connected, `|E| = |N| − 1`).
    #[must_use]
    pub fn is_tree(&self) -> bool {
        self.live_edges + 1 == self.node_count() && self.is_connected()
    }

    /// Merges parallel edges between the same endpoints into one edge whose
    /// width is the sum of the merged widths, reflecting the paper's
    /// observation that "two separate parallel wires of width w ... is
    /// equivalent to having a single wire of width 2w". Returns the number
    /// of edges removed.
    pub fn merge_parallel_edges(&mut self) -> usize {
        use std::collections::HashMap;
        let mut first: HashMap<(usize, usize), EdgeId> = HashMap::new();
        let mut to_merge: Vec<(EdgeId, EdgeId)> = Vec::new();
        for (id, e) in self.edges() {
            let key = (e.a.0.min(e.b.0), e.a.0.max(e.b.0));
            match first.entry(key) {
                std::collections::hash_map::Entry::Occupied(kept) => {
                    to_merge.push((*kept.get(), id));
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(id);
                }
            }
        }
        let merged = to_merge.len();
        for (kept, dup) in to_merge {
            let extra = self.remove_edge(dup).expect("edge listed as live").width;
            if let Some(Some(e)) = self.edges.get_mut(kept.0) {
                e.width += extra;
            }
        }
        merged
    }

    fn check_node(&self, n: NodeId) -> Result<(), GraphError> {
        if n.0 < self.points.len() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: n,
                len: self.points.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (RoutingGraph, NodeId, NodeId, NodeId) {
        let net = Net::new(
            Point::new(0.0, 0.0),
            vec![Point::new(10.0, 0.0), Point::new(0.0, 10.0)],
        )
        .unwrap();
        let g = RoutingGraph::from_net(&net);
        (g, NodeId(0), NodeId(1), NodeId(2))
    }

    #[test]
    fn from_net_has_pins_and_no_edges() {
        let (g, s, _, _) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.pin_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.source(), s);
        assert!(g.kind(s).unwrap().is_pin());
        assert_eq!(g.sink_nodes().count(), 2);
        assert!(!g.is_connected());
    }

    #[test]
    fn edges_have_manhattan_length() {
        let (mut g, s, a, b) = triangle();
        let e1 = g.add_edge(s, a).unwrap();
        let e2 = g.add_edge(a, b).unwrap();
        assert_eq!(g.edge(e1).unwrap().length(), 10.0);
        assert_eq!(g.edge(e2).unwrap().length(), 20.0);
        assert_eq!(g.total_cost(), 30.0);
        assert!(g.is_tree());
    }

    #[test]
    fn cycle_is_detected_by_is_tree_not_by_connectivity() {
        let (mut g, s, a, b) = triangle();
        g.add_edge(s, a).unwrap();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, s).unwrap();
        assert!(g.is_connected());
        assert!(!g.is_tree());
    }

    #[test]
    fn self_loop_is_rejected() {
        let (mut g, s, _, _) = triangle();
        assert_eq!(
            g.add_edge(s, s).unwrap_err(),
            GraphError::SelfLoop { node: s }
        );
    }

    #[test]
    fn foreign_ids_are_rejected() {
        let (g, _, _, _) = triangle();
        let bad = NodeId(99);
        assert!(matches!(
            g.point(bad),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.edge(EdgeId(0)),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
    }

    #[test]
    fn remove_edge_leaves_stable_ids() {
        let (mut g, s, a, b) = triangle();
        let e1 = g.add_edge(s, a).unwrap();
        let e2 = g.add_edge(a, b).unwrap();
        let removed = g.remove_edge(e1).unwrap();
        assert_eq!(removed.length(), 10.0);
        assert_eq!(g.edge_count(), 1);
        assert!(matches!(g.edge(e1), Err(GraphError::EdgeRemoved { .. })));
        assert_eq!(g.edge(e2).unwrap().length(), 20.0);
        assert!(!g.has_edge(s, a));
        assert!(g.has_edge(a, b));
    }

    #[test]
    fn move_node_recomputes_incident_lengths_only() {
        let (mut g, s, a, b) = triangle();
        let e1 = g.add_edge(s, a).unwrap();
        let e2 = g.add_edge(a, b).unwrap();
        g.set_width(e2, 2.0).unwrap();
        g.move_node(a, Point::new(20.0, 0.0)).unwrap();
        assert_eq!(g.point(a).unwrap(), Point::new(20.0, 0.0));
        assert_eq!(g.edge(e1).unwrap().length(), 20.0);
        assert_eq!(g.edge(e2).unwrap().length(), 30.0);
        // Widths and connectivity survive the move.
        assert_eq!(g.edge(e2).unwrap().width(), 2.0);
        assert!(g.has_edge(s, a));
        assert!(g.has_edge(a, b));
        assert!(matches!(
            g.move_node(NodeId(99), Point::new(0.0, 0.0)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn steiner_nodes_extend_the_graph() {
        let (mut g, s, a, _) = triangle();
        let st = g.add_steiner(Point::new(5.0, 5.0));
        assert_eq!(g.kind(st).unwrap(), NodeKind::Steiner);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.pin_count(), 3);
        g.add_edge(s, st).unwrap();
        g.add_edge(st, a).unwrap();
        assert_eq!(g.degree(st).unwrap(), 2);
    }

    #[test]
    fn width_validation_and_area_cost() {
        let (mut g, s, a, _) = triangle();
        let e = g.add_edge_with_width(s, a, 2.0).unwrap();
        assert_eq!(g.total_cost(), 10.0);
        assert_eq!(g.total_wire_area(), 20.0);
        assert!(matches!(
            g.set_width(e, -1.0),
            Err(GraphError::InvalidWidth { .. })
        ));
        g.set_width(e, 3.0).unwrap();
        assert_eq!(g.total_wire_area(), 30.0);
        assert!(matches!(
            g.add_edge_with_width(s, a, f64::NAN),
            Err(GraphError::InvalidWidth { .. })
        ));
    }

    #[test]
    fn merge_parallel_edges_sums_widths() {
        let (mut g, s, a, _) = triangle();
        g.add_edge(s, a).unwrap();
        g.add_edge(a, s).unwrap();
        g.add_edge_with_width(s, a, 0.5).unwrap();
        assert_eq!(g.edge_count(), 3);
        let merged = g.merge_parallel_edges();
        assert_eq!(merged, 2);
        assert_eq!(g.edge_count(), 1);
        let (_, e) = g.edges().next().unwrap();
        assert!((e.width() - 2.5).abs() < 1e-12);
        // Cost counts wirelength once after merging.
        assert_eq!(g.total_cost(), 10.0);
    }

    #[test]
    fn edge_other_endpoint() {
        let (mut g, s, a, b) = triangle();
        let e = g.add_edge(s, a).unwrap();
        let edge = *g.edge(e).unwrap();
        assert_eq!(edge.other(s), Some(a));
        assert_eq!(edge.other(a), Some(s));
        assert_eq!(edge.other(b), None);
    }
}
