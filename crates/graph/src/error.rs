use std::error::Error;
use std::fmt;

use crate::{EdgeId, NodeId};

/// Errors raised by [`RoutingGraph`](crate::RoutingGraph) mutations and
/// queries.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id does not refer to a node of this graph.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// Self-loop edges are not meaningful in a routing.
    SelfLoop {
        /// The node the edge would loop on.
        node: NodeId,
    },
    /// An edge id does not refer to an edge of this graph.
    EdgeOutOfRange {
        /// The offending edge id.
        edge: EdgeId,
        /// Number of edge slots in the graph.
        len: usize,
    },
    /// The edge was already removed.
    EdgeRemoved {
        /// The offending edge id.
        edge: EdgeId,
    },
    /// Edge widths must be strictly positive.
    InvalidWidth {
        /// The rejected width value.
        width: f64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(f, "node {node:?} out of range for graph with {len} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node:?} is not a valid routing edge")
            }
            GraphError::EdgeOutOfRange { edge, len } => {
                write!(
                    f,
                    "edge {edge:?} out of range for graph with {len} edge slots"
                )
            }
            GraphError::EdgeRemoved { edge } => write!(f, "edge {edge:?} was already removed"),
            GraphError::InvalidWidth { width } => {
                write!(f, "edge width must be positive and finite, got {width}")
            }
        }
    }
}

impl Error for GraphError {}

/// Error returned when a [`TreeView`](crate::TreeView) is requested for a
/// graph that is not a spanning tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NotATreeError {
    /// The graph is not connected.
    Disconnected {
        /// Number of nodes reachable from the source.
        reachable: usize,
        /// Total number of nodes.
        total: usize,
    },
    /// The graph has more edges than a tree allows (it contains a cycle).
    HasCycle {
        /// Number of live edges.
        edges: usize,
        /// Number of nodes.
        nodes: usize,
    },
}

impl fmt::Display for NotATreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotATreeError::Disconnected { reachable, total } => write!(
                f,
                "graph is disconnected: {reachable} of {total} nodes reachable from source"
            ),
            NotATreeError::HasCycle { edges, nodes } => write!(
                f,
                "graph has {edges} edges over {nodes} nodes and therefore contains a cycle"
            ),
        }
    }
}

impl Error for NotATreeError {}
