//! Routing-graph topologies for non-tree routing.
//!
//! The central type is [`RoutingGraph`]: a set of nodes (the pins of a
//! [`Net`](ntr_geom::Net) plus optional Steiner nodes) connected by edges
//! whose cost is the Manhattan distance between their endpoints, exactly the
//! routing-graph formulation `G = (N, E)` of McCoy & Robins. Unlike
//! classical routers, a `RoutingGraph` is *not* restricted to a tree —
//! cycles are first-class, which is the whole point of the paper.
//!
//! The crate also provides:
//!
//! - [`prim_mst`] — the minimum spanning tree every algorithm in the paper
//!   starts from,
//! - [`TreeView`] — a rooted, validated view of a graph that *is* a tree
//!   (needed by the Elmore delay engine, which is tree-only),
//! - [`shortest_path_lengths`] — Dijkstra distances used for graph radius
//!   and pathlength-based heuristics.
//!
//! # Examples
//!
//! ```
//! use ntr_geom::{Net, Point};
//! use ntr_graph::{prim_mst, RoutingGraph, TreeView};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Net::new(
//!     Point::new(0.0, 0.0),
//!     vec![Point::new(100.0, 0.0), Point::new(100.0, 100.0)],
//! )?;
//! let mut graph = prim_mst(&net);
//! assert!(graph.is_tree());
//! assert_eq!(graph.total_cost(), 200.0);
//!
//! // Non-tree routing: add the cycle-forming edge source -> far sink.
//! let far = graph.node_ids().last().unwrap();
//! graph.add_edge(graph.source(), far)?;
//! assert!(!graph.is_tree());
//! assert!(graph.is_connected());
//! # Ok(())
//! # }
//! ```

mod dijkstra;
mod embed;
mod error;
mod graph;
mod metrics;
mod mst;
mod svg;
mod tree;

pub use dijkstra::shortest_path_lengths;
pub use embed::{embed_rectilinear, BendStyle};
pub use error::{GraphError, NotATreeError};
pub use graph::{Edge, EdgeId, NodeId, NodeKind, RoutingGraph};
pub use metrics::GraphMetrics;
pub use mst::{prim_mst, prim_mst_cost, prim_mst_edges};
pub use svg::{render_svg, SvgOptions};
pub use tree::TreeView;
