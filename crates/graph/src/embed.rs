use ntr_geom::Point;

use crate::{NodeId, RoutingGraph};

/// Which corner an L-shaped wire bends through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BendStyle {
    /// Horizontal first from the lower-indexed endpoint, then vertical.
    #[default]
    HorizontalFirst,
    /// Vertical first from the lower-indexed endpoint, then horizontal.
    VerticalFirst,
}

/// Produces a **rectilinear embedding** of a routing graph: every edge
/// whose endpoints differ in both coordinates is replaced by two
/// axis-parallel segments joined at a bend (a zero-capacitance Steiner
/// node).
///
/// Total wirelength is exactly preserved (the L has the same Manhattan
/// length), and so are all Elmore delays — the RPH formula is invariant
/// under splitting a uniform wire at a loadless junction (see the
/// `ntr-elmore` tests). Edge widths carry over to both halves.
///
/// The embedded graph is what a detailed router or a GDS writer would
/// consume; it is also closer to the wire shapes the paper's figures draw.
///
/// # Examples
///
/// ```
/// use ntr_geom::{Net, Point};
/// use ntr_graph::{embed_rectilinear, prim_mst, BendStyle};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(30.0, 40.0)])?;
/// let mst = prim_mst(&net);
/// let embedded = embed_rectilinear(&mst, BendStyle::HorizontalFirst);
/// assert_eq!(embedded.node_count(), 3); // bend inserted
/// assert_eq!(embedded.total_cost(), mst.total_cost());
/// // All remaining edges are axis-parallel.
/// for (_, e) in embedded.edges() {
///     let a = embedded.point(e.a())?;
///     let b = embedded.point(e.b())?;
///     assert!(a.x == b.x || a.y == b.y);
/// }
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn embed_rectilinear(graph: &RoutingGraph, style: BendStyle) -> RoutingGraph {
    let mut out = graph.without_edges();
    let point_of = |n: NodeId| graph.point(n).expect("iterating source graph nodes");
    for (_, edge) in graph.edges() {
        let (a, b) = (edge.a(), edge.b());
        let (pa, pb) = (point_of(a), point_of(b));
        if pa.x == pb.x || pa.y == pb.y {
            out.add_edge_with_width(a, b, edge.width())
                .expect("nodes copied verbatim");
            continue;
        }
        let corner = match style {
            BendStyle::HorizontalFirst => Point::new(pb.x, pa.y),
            BendStyle::VerticalFirst => Point::new(pa.x, pb.y),
        };
        let bend = out.add_steiner(corner);
        out.add_edge_with_width(a, bend, edge.width())
            .expect("nodes exist");
        out.add_edge_with_width(bend, b, edge.width())
            .expect("nodes exist");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim_mst;
    use ntr_geom::{Layout, Net, NetGenerator};

    #[test]
    fn axis_parallel_edges_pass_through_unchanged() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(10.0, 0.0)]).unwrap();
        let mst = prim_mst(&net);
        let embedded = embed_rectilinear(&mst, BendStyle::default());
        assert_eq!(embedded.node_count(), 2);
        assert_eq!(embedded.edge_count(), 1);
    }

    #[test]
    fn bend_styles_choose_opposite_corners() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(10.0, 20.0)]).unwrap();
        let mst = prim_mst(&net);
        let h = embed_rectilinear(&mst, BendStyle::HorizontalFirst);
        let v = embed_rectilinear(&mst, BendStyle::VerticalFirst);
        let corner = |g: &RoutingGraph| {
            g.node_ids()
                .find(|&n| g.kind(n).unwrap() == crate::NodeKind::Steiner)
                .map(|n| g.point(n).unwrap())
                .unwrap()
        };
        assert_eq!(corner(&h), Point::new(10.0, 0.0));
        assert_eq!(corner(&v), Point::new(0.0, 20.0));
    }

    #[test]
    fn embedding_preserves_cost_connectivity_and_widths() {
        let net = NetGenerator::new(Layout::date94(), 42)
            .random_net(12)
            .unwrap();
        let mut g = prim_mst(&net);
        let far = g.node_ids().last().unwrap();
        if !g.has_edge(g.source(), far) {
            let e = g.add_edge(g.source(), far).unwrap();
            g.set_width(e, 2.0).unwrap();
        }
        let embedded = embed_rectilinear(&g, BendStyle::default());
        assert!((embedded.total_cost() - g.total_cost()).abs() < 1e-9);
        assert!((embedded.total_wire_area() - g.total_wire_area()).abs() < 1e-9);
        assert!(embedded.is_connected());
        for (_, e) in embedded.edges() {
            let a = embedded.point(e.a()).unwrap();
            let b = embedded.point(e.b()).unwrap();
            assert!(a.x == b.x || a.y == b.y, "edge not axis-parallel");
        }
    }
}
