//! Property-based tests for routing graphs, MST optimality and tree views.

use ntr_geom::{Layout, NetGenerator};
use ntr_graph::{prim_mst, prim_mst_cost, shortest_path_lengths, NodeId, RoutingGraph, TreeView};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_net(seed: u64, size: usize) -> ntr_geom::Net {
    NetGenerator::new(Layout::date94(), seed)
        .random_net(size)
        .unwrap()
}

fn node(g: &RoutingGraph, i: usize) -> NodeId {
    g.node_ids().nth(i).expect("index within node count")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Prim MST spans the net, is a tree, and costs no more than any random
    /// spanning tree over the same pins.
    #[test]
    fn mst_is_optimal_among_random_spanning_trees(seed in 0u64..500, size in 2usize..25) {
        let net = random_net(seed, size);
        let mst = prim_mst(&net);
        prop_assert!(mst.is_tree());
        prop_assert_eq!(mst.node_count(), size);
        prop_assert!((mst.total_cost() - prim_mst_cost(net.pins())).abs() < 1e-9);

        // Random spanning tree: attach each pin to a random already-attached pin.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let mut graph = RoutingGraph::from_net(&net);
        for j in 1..size {
            let attach = rng.gen_range(0..j);
            graph.add_edge(node(&graph, attach), node(&graph, j)).unwrap();
        }
        prop_assert!(graph.is_tree());
        prop_assert!(mst.total_cost() <= graph.total_cost() + 1e-9);
    }

    /// Adding any extra edge to the MST keeps it connected, makes it cyclic,
    /// and never lengthens shortest paths.
    #[test]
    fn extra_edges_only_shorten_paths(seed in 0u64..500, size in 3usize..20, pick in any::<(usize, usize)>()) {
        let net = random_net(seed, size);
        let mut g = prim_mst(&net);
        let before = shortest_path_lengths(&g, g.source()).unwrap();
        let a = node(&g, pick.0 % size);
        let b = node(&g, pick.1 % size);
        if a != b && !g.has_edge(a, b) {
            g.add_edge(a, b).unwrap();
            prop_assert!(g.is_connected());
            prop_assert!(!g.is_tree());
            let after = shortest_path_lengths(&g, g.source()).unwrap();
            for (d0, d1) in before.iter().zip(&after) {
                prop_assert!(d1 <= &(d0 + 1e-9));
            }
        }
    }

    /// TreeView pathlengths agree with Dijkstra on trees.
    #[test]
    fn tree_pathlengths_match_dijkstra(seed in 0u64..500, size in 2usize..25) {
        let net = random_net(seed, size);
        let mst = prim_mst(&net);
        let tree = TreeView::new(&mst).unwrap();
        let dist = shortest_path_lengths(&mst, mst.source()).unwrap();
        for n in mst.node_ids() {
            prop_assert!((tree.path_length(n) - dist[n.index()]).abs() < 1e-9);
        }
        prop_assert!((tree.radius() - dist.iter().copied().fold(0.0, f64::max)).abs() < 1e-9);
    }

    /// Removing an MST edge always disconnects the tree.
    #[test]
    fn removing_tree_edge_disconnects(seed in 0u64..200, size in 2usize..15, which in any::<usize>()) {
        let net = random_net(seed, size);
        let mut mst = prim_mst(&net);
        let ids: Vec<_> = mst.edges().map(|(id, _)| id).collect();
        let victim = ids[which % ids.len()];
        mst.remove_edge(victim).unwrap();
        prop_assert!(!mst.is_connected());
    }
}
