use std::error::Error;
use std::fmt;

use ntr_circuit::Technology;

/// Errors raised by [`elmore_parent_array`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParentArrayError {
    /// The arrays have inconsistent lengths.
    LengthMismatch,
    /// A parent index is out of range.
    BadParent {
        /// The node with the bad parent pointer.
        node: usize,
    },
    /// The parent pointers contain a cycle (or no root is reachable).
    Cyclic,
    /// Exactly one root (node with no parent) is required.
    RootCount {
        /// Number of parentless nodes found.
        got: usize,
    },
}

impl fmt::Display for ParentArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParentArrayError::LengthMismatch => {
                write!(
                    f,
                    "parent, length, width and sink arrays must have equal lengths"
                )
            }
            ParentArrayError::BadParent { node } => {
                write!(f, "node {node} has an out-of-range parent")
            }
            ParentArrayError::Cyclic => write!(f, "parent pointers contain a cycle"),
            ParentArrayError::RootCount { got } => {
                write!(f, "exactly one root required, found {got}")
            }
        }
    }
}

impl Error for ParentArrayError {}

/// Elmore delays of a tree given in parent-array form.
///
/// This is the representation the ERT constructor grows one node at a
/// time: `parent[i]` is `None` for the root (the driver-connected source)
/// and `Some(p)` otherwise; `edge_len[i]`/`edge_width[i]` describe the edge
/// from `i` to its parent (ignored for the root); `is_sink[i]` marks nodes
/// carrying the sink loading capacitance.
///
/// Returns the per-node Elmore delay in seconds.
///
/// # Errors
///
/// Returns [`ParentArrayError`] for inconsistent lengths, out-of-range
/// parents, multiple roots, or cyclic parent pointers.
///
/// # Examples
///
/// ```
/// use ntr_circuit::Technology;
/// use ntr_elmore::elmore_parent_array;
/// # fn main() -> Result<(), ntr_elmore::ParentArrayError> {
/// // source(0) -> sink(1), 1 mm apart
/// let delays = elmore_parent_array(
///     &[None, Some(0)],
///     &[0.0, 1000.0],
///     &[1.0, 1.0],
///     &[false, true],
///     &Technology::date94(),
/// )?;
/// assert!(delays[1] > delays[0]);
/// # Ok(())
/// # }
/// ```
pub fn elmore_parent_array(
    parent: &[Option<usize>],
    edge_len: &[f64],
    edge_width: &[f64],
    is_sink: &[bool],
    tech: &Technology,
) -> Result<Vec<f64>, ParentArrayError> {
    let n = parent.len();
    if edge_len.len() != n || edge_width.len() != n || is_sink.len() != n {
        return Err(ParentArrayError::LengthMismatch);
    }
    let roots = parent.iter().filter(|p| p.is_none()).count();
    if roots != 1 {
        return Err(ParentArrayError::RootCount { got: roots });
    }
    for (i, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            if *p >= n {
                return Err(ParentArrayError::BadParent { node: i });
            }
        }
    }

    // Topological order root-first by repeated depth resolution.
    let mut depth = vec![usize::MAX; n];
    for i in 0..n {
        // Walk up until a node with known depth (or the root).
        let mut chain = Vec::new();
        let mut cur = i;
        while depth[cur] == usize::MAX {
            chain.push(cur);
            match parent[cur] {
                None => {
                    depth[cur] = 0;
                    chain.pop();
                    break;
                }
                Some(p) => {
                    if chain.len() > n {
                        return Err(ParentArrayError::Cyclic);
                    }
                    cur = p;
                }
            }
        }
        for &node in chain.iter().rev() {
            depth[node] = depth[parent[node].expect("non-root in chain")] + 1;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| depth[i]);

    // Leaves-first: subtree capacitance.
    let mut subtree_cap: Vec<f64> = is_sink
        .iter()
        .map(|&s| if s { tech.sink_capacitance } else { 0.0 })
        .collect();
    for &i in order.iter().rev() {
        if let Some(p) = parent[i] {
            let edge_cap = tech.wire_capacitance(edge_len[i], edge_width[i]);
            subtree_cap[p] += subtree_cap[i] + edge_cap;
        }
    }
    let root = order[0];

    // Root-first: delays.
    let mut delay = vec![0.0f64; n];
    delay[root] = tech.driver_resistance * subtree_cap[root];
    for &i in &order {
        if let Some(p) = parent[i] {
            let r = tech.wire_resistance(edge_len[i], edge_width[i]);
            let c = tech.wire_capacitance(edge_len[i], edge_width[i]);
            delay[i] = delay[p] + r * (c / 2.0 + subtree_cap[i]);
        }
    }
    Ok(delay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ElmoreAnalysis;
    use ntr_geom::{Layout, NetGenerator};
    use ntr_graph::{prim_mst, TreeView};

    /// The parent-array evaluation agrees exactly with the TreeView-based
    /// analysis on random MSTs.
    #[test]
    fn agrees_with_tree_view_analysis() {
        let tech = Technology::date94();
        for seed in 0..20 {
            let net = NetGenerator::new(Layout::date94(), seed)
                .random_net(12)
                .unwrap();
            let mst = prim_mst(&net);
            let tree = TreeView::new(&mst).unwrap();
            let reference = ElmoreAnalysis::compute(&tree, &tech);

            let n = mst.node_count();
            let mut parent = vec![None; n];
            let mut edge_len = vec![0.0; n];
            let mut edge_width = vec![1.0; n];
            let is_sink: Vec<bool> = (0..n).map(|i| i != 0).collect();
            for node in mst.node_ids() {
                if let Some((p, e)) = tree.parent(node) {
                    parent[node.index()] = Some(p.index());
                    edge_len[node.index()] = mst.edge(e).unwrap().length();
                    edge_width[node.index()] = mst.edge(e).unwrap().width();
                }
            }
            let delays =
                elmore_parent_array(&parent, &edge_len, &edge_width, &is_sink, &tech).unwrap();
            for node in mst.node_ids() {
                let a = reference.delay(node);
                let b = delays[node.index()];
                assert!((a - b).abs() <= 1e-18 + 1e-12 * a.abs(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn cycles_are_detected() {
        let err = elmore_parent_array(
            &[None, Some(2), Some(1)],
            &[0.0, 1.0, 1.0],
            &[1.0, 1.0, 1.0],
            &[false, true, true],
            &Technology::date94(),
        )
        .unwrap_err();
        assert_eq!(err, ParentArrayError::Cyclic);
    }

    #[test]
    fn root_count_is_validated() {
        let err = elmore_parent_array(
            &[None, None],
            &[0.0, 0.0],
            &[1.0, 1.0],
            &[false, true],
            &Technology::date94(),
        )
        .unwrap_err();
        assert_eq!(err, ParentArrayError::RootCount { got: 2 });
    }

    #[test]
    fn length_mismatch_is_validated() {
        let err = elmore_parent_array(
            &[None],
            &[0.0, 1.0],
            &[1.0],
            &[false],
            &Technology::date94(),
        )
        .unwrap_err();
        assert_eq!(err, ParentArrayError::LengthMismatch);
    }

    #[test]
    fn bad_parent_is_validated() {
        let err = elmore_parent_array(
            &[None, Some(9)],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[false, true],
            &Technology::date94(),
        )
        .unwrap_err();
        assert_eq!(err, ParentArrayError::BadParent { node: 1 });
    }
}
