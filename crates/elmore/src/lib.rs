//! The Elmore delay engine for routing trees.
//!
//! Implements the Rubinstein–Penfield–Horowitz O(k) evaluation of the
//! Elmore delay formula the paper uses inside its H2/H3 heuristics and the
//! ERT baseline (equation (1) of the paper):
//!
//! ```text
//! t_ED(n_i) = r_d·C(T) + Σ_{e_j ∈ path(n_0, n_i)} r_j·(c_j/2 + C_j)
//! ```
//!
//! where `r_d` is the driver resistance, `C(T)` the total tree capacitance,
//! and `C_j` the capacitance of the subtree hanging below edge `e_j`.
//!
//! Two entry points:
//!
//! - [`ElmoreAnalysis::compute`] — on a validated
//!   [`TreeView`](ntr_graph::TreeView) of a routing graph,
//! - [`elmore_parent_array`] — on a raw parent-array tree, the form the
//!   ERT constructor grows incrementally.
//!
//! The Elmore model is defined **only for trees**; for non-tree routing
//! graphs use the moment analysis in `ntr-spice`
//! (`Moments::elmore_of_node`), which this crate's tests cross-validate
//! against to 10⁻⁹ relative error.
//!
//! # Examples
//!
//! ```
//! use ntr_circuit::Technology;
//! use ntr_elmore::ElmoreAnalysis;
//! use ntr_geom::{Net, Point};
//! use ntr_graph::{prim_mst, TreeView};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(5000.0, 0.0)])?;
//! let mst = prim_mst(&net);
//! let tree = TreeView::new(&mst)?;
//! let analysis = ElmoreAnalysis::compute(&tree, &Technology::date94());
//! assert!(analysis.max_sink_delay() > 0.0);
//! # Ok(())
//! # }
//! ```

mod analysis;
mod parent_array;
mod sensitivity;

pub use analysis::{ElmoreAnalysis, ElmoreWorkspace};
pub use parent_array::{elmore_parent_array, ParentArrayError};
pub use sensitivity::elmore_width_gradient;
