use ntr_circuit::Technology;
use ntr_graph::{EdgeId, NodeId, TreeView};

use crate::ElmoreAnalysis;

/// The analytic gradient of one sink's Elmore delay with respect to every
/// edge's **width multiplier** — the derivative the WSORG problem
/// optimizes over.
///
/// Differentiating the RPH form `T_i = r_d·C(T) + Σ_{j∈path(i)}
/// r_j·(c_j/2 + C_j)` with `r_e ∝ 1/w_e` and `c_e ∝ w_e` gives, for edge
/// `e` with subtree-side endpoint `v_e`:
///
/// ```text
/// dT_i/dw_e = (c_e/w_e)·(r_d + R_shared)                # added capacitance
///           + [e ∈ path(i)]·(c_e/w_e)·(r_e/2)           # through e itself
///           − [e ∈ path(i)]·(r_e/w_e)·(c_e/2 + C_e)     # reduced resistance
/// ```
///
/// where `R_shared` is the wire resistance of the common prefix of
/// `path(root, i)` and `path(root, parent(v_e))` — the classical "shared
/// path" term of the Elmore formula.
///
/// A negative entry means widening that edge *reduces* the sink's delay;
/// gradient-guided sizing tries the most negative entries first instead
/// of sweeping every edge.
///
/// Returns `(edge, dT_i/dw_e)` pairs for all live edges.
///
/// # Examples
///
/// ```
/// use ntr_circuit::Technology;
/// use ntr_elmore::elmore_width_gradient;
/// use ntr_geom::{Net, Point};
/// use ntr_graph::{prim_mst, TreeView};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(10_000.0, 0.0)])?;
/// let mst = prim_mst(&net);
/// let tree = TreeView::new(&mst)?;
/// let sink = mst.node_ids().last().unwrap();
/// let grad = elmore_width_gradient(&tree, &Technology::date94(), sink);
/// assert_eq!(grad.len(), 1);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `sink` is not a node of the tree.
#[must_use]
pub fn elmore_width_gradient(
    tree: &TreeView<'_>,
    tech: &Technology,
    sink: NodeId,
) -> Vec<(EdgeId, f64)> {
    let graph = tree.graph();
    let analysis = ElmoreAnalysis::compute(tree, tech);

    // Wire-path resistance from the root to each node.
    let mut path_r = vec![0.0f64; graph.node_count()];
    for &node in tree.root_first_order() {
        if let Some((parent, eid)) = tree.parent(node) {
            let edge = graph.edge(eid).expect("tree edges are live");
            path_r[node.index()] =
                path_r[parent.index()] + tech.wire_resistance(edge.length(), edge.width());
        }
    }

    // Membership of path(root, sink), marked per subtree-side node.
    let mut on_path = vec![false; graph.node_count()];
    for node in tree.path_from_root(sink) {
        on_path[node.index()] = true;
    }

    // Lowest common ancestor of `sink` and `v` by walking up from v until
    // hitting the sink path (every ancestor chain reaches the root, which
    // is on every path).
    let lca_with_sink = |mut v: NodeId| -> NodeId {
        while !on_path[v.index()] {
            v = tree.parent(v).expect("non-root nodes have parents").0;
        }
        v
    };

    graph
        .edges()
        .map(|(eid, edge)| {
            // Subtree-side endpoint: the one whose parent edge is `eid`.
            let v_e = if tree.parent(edge.a()).is_some_and(|(_, pe)| pe == eid) {
                edge.a()
            } else {
                edge.b()
            };
            let w = edge.width();
            let r_e = tech.wire_resistance(edge.length(), w);
            let c_e = tech.wire_capacitance(edge.length(), w);
            let e_on_path = on_path[v_e.index()];

            let shared_r = if e_on_path {
                // Proper ancestors of v_e are all on the sink path.
                tree.parent(v_e).map_or(0.0, |(p, _)| path_r[p.index()])
            } else {
                path_r[lca_with_sink(v_e).index()]
            };

            let mut grad = (c_e / w) * (tech.driver_resistance + shared_r);
            if e_on_path {
                grad += (c_e / w) * (r_e / 2.0);
                grad -= (r_e / w) * (c_e / 2.0 + analysis.subtree_capacitance(v_e));
            }
            (eid, grad)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_geom::{Layout, Net, NetGenerator, Point};
    use ntr_graph::{prim_mst, RoutingGraph};

    /// Central correctness test: the analytic gradient matches central
    /// finite differences of the actual Elmore evaluation, edge by edge,
    /// on random trees with mixed widths.
    #[test]
    fn gradient_matches_finite_differences() {
        let tech = Technology::date94();
        for seed in 0..12 {
            let net = NetGenerator::new(Layout::date94(), seed)
                .random_net(9)
                .unwrap();
            let mut g = prim_mst(&net);
            // Mixed widths to exercise the general case.
            let ids: Vec<_> = g.edges().map(|(id, _)| id).collect();
            for (k, id) in ids.iter().enumerate() {
                g.set_width(*id, 1.0 + (k % 3) as f64).unwrap();
            }
            let sink = g.sink_nodes().last().unwrap();

            let grad = {
                let tree = TreeView::new(&g).unwrap();
                elmore_width_gradient(&tree, &tech, sink)
            };
            let h = 1e-6;
            for (eid, analytic) in grad {
                let w0 = g.edge(eid).unwrap().width();
                let eval = |g: &RoutingGraph| {
                    let tree = TreeView::new(g).unwrap();
                    ElmoreAnalysis::compute(&tree, &tech).delay(sink)
                };
                g.set_width(eid, w0 + h).unwrap();
                let plus = eval(&g);
                g.set_width(eid, w0 - h).unwrap();
                let minus = eval(&g);
                g.set_width(eid, w0).unwrap();
                let numeric = (plus - minus) / (2.0 * h);
                let scale = analytic.abs().max(numeric.abs()).max(1e-18);
                assert!(
                    (analytic - numeric).abs() / scale < 1e-4,
                    "seed {seed} edge {eid:?}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    /// Off-path edges always have positive gradient (pure capacitive
    /// load), so widening them can never help that sink.
    #[test]
    fn off_path_edges_have_positive_gradient() {
        // Star: source with two leaves; each leaf's parent edge is off the
        // other leaf's path.
        let net = Net::new(
            Point::new(0.0, 0.0),
            vec![Point::new(5000.0, 0.0), Point::new(0.0, 5000.0)],
        )
        .unwrap();
        let g = prim_mst(&net);
        let tech = Technology::date94();
        let tree = TreeView::new(&g).unwrap();
        let sink1 = g.sink_nodes().next().unwrap();
        for (eid, grad) in elmore_width_gradient(&tree, &tech, sink1) {
            let edge = g.edge(eid).unwrap();
            let touches_sink1 = edge.a() == sink1 || edge.b() == sink1;
            if !touches_sink1 {
                assert!(grad > 0.0, "off-path gradient {grad} should be positive");
            }
        }
    }

    /// On a single long wire the gradient is negative (resistance
    /// dominated) exactly when the hand-derived condition says so.
    #[test]
    fn long_wire_gradient_sign_matches_hand_analysis() {
        let tech = Technology::date94();
        // d/dw of t = rd*cL*w + (r0 c0 L^2)/2 + r0 L cs / w at w=1:
        //   rd*c0*L - r0*L*cs  => positive for this tech at any L
        // (driver-dominated: widening a single uniform wire never helps).
        for len in [1000.0, 10_000.0] {
            let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(len, 0.0)]).unwrap();
            let g = prim_mst(&net);
            let tree = TreeView::new(&g).unwrap();
            let sink = g.sink_nodes().next().unwrap();
            let grad = elmore_width_gradient(&tree, &tech, sink);
            let expected = tech.driver_resistance * tech.wire_capacitance_per_um * len
                - tech.wire_resistance_per_um * len * tech.sink_capacitance;
            assert!((grad[0].1 - expected).abs() / expected.abs() < 1e-9);
            assert!(grad[0].1 > 0.0);
        }
    }

    /// The trunk of a hub-and-spokes net has negative gradient (the
    /// wire_size doctest scenario), and it is the most negative edge.
    #[test]
    fn trunk_gradient_is_most_negative_on_spine() {
        let sinks: Vec<Point> = (0..6)
            .map(|i| Point::new(8000.0, 1500.0 * f64::from(i)))
            .collect();
        let net = Net::new(Point::new(0.0, 0.0), sinks).unwrap();
        let mut g = RoutingGraph::from_net(&net);
        let hub = g.add_steiner(Point::new(800.0, 0.0));
        g.add_edge(g.source(), hub).unwrap();
        let sink_ids: Vec<_> = g.node_ids().skip(1).take(6).collect();
        for s in sink_ids {
            g.add_edge(hub, s).unwrap();
        }
        let tech = Technology::date94();
        let tree = TreeView::new(&g).unwrap();
        let worst = ElmoreAnalysis::compute(&tree, &tech).max_sink().unwrap();
        let grad = elmore_width_gradient(&tree, &tech, worst);
        let (most_negative, value) = grad
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .copied()
            .unwrap();
        assert!(value < 0.0);
        // The most negative edge is the source->hub trunk.
        let edge = g.edge(most_negative).unwrap();
        assert!(edge.other(g.source()).is_some());
    }
}
