use ntr_circuit::Technology;
use ntr_graph::{NodeId, NodeKind, TreeView};

/// Per-node Elmore delays of a routing tree under a technology.
///
/// Computed in two O(k) sweeps: a leaves-first pass accumulating subtree
/// capacitances, then a root-first pass accumulating path delays.
///
/// # Examples
///
/// ```
/// use ntr_circuit::Technology;
/// use ntr_elmore::ElmoreAnalysis;
/// use ntr_geom::{Net, Point};
/// use ntr_graph::{prim_mst, TreeView};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(
///     Point::new(0.0, 0.0),
///     vec![Point::new(1000.0, 0.0), Point::new(2000.0, 0.0)],
/// )?;
/// let mst = prim_mst(&net);
/// let tree = TreeView::new(&mst)?;
/// let a = ElmoreAnalysis::compute(&tree, &Technology::date94());
/// // The farther sink has the larger delay.
/// let sinks: Vec<f64> = a.sink_delays();
/// assert!(sinks[1] > sinks[0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ElmoreAnalysis {
    per_node: Vec<f64>,
    subtree_cap: Vec<f64>,
    total_cap: f64,
    /// `(pin index, node)` pairs of the sinks, sorted by pin index.
    sinks: Vec<(usize, NodeId)>,
}

/// Reusable storage for [`ElmoreAnalysis::compute_with`].
///
/// The analysis is already laid out struct-of-arrays (one `f64` array per
/// quantity, indexed by node); the workspace recycles those arrays across
/// the candidate sweeps of the tree heuristics and the ERT builders, so a
/// loop evaluating thousands of trial trees stops allocating entirely.
/// Pair with [`ElmoreAnalysis::recycle`] to return a result's storage.
#[derive(Debug, Default)]
pub struct ElmoreWorkspace {
    per_node: Vec<f64>,
    subtree_cap: Vec<f64>,
    sinks: Vec<(usize, NodeId)>,
}

impl ElmoreWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl ElmoreAnalysis {
    /// Evaluates the Elmore delay of every node of `tree`.
    ///
    /// Sink pins carry the technology's sink loading capacitance; Steiner
    /// nodes are capacitance-free junctions. Edge widths scale resistance
    /// and capacitance per [`Technology`].
    #[must_use]
    pub fn compute(tree: &TreeView<'_>, tech: &Technology) -> Self {
        Self::compute_with(tree, tech, &mut ElmoreWorkspace::new())
    }

    /// [`ElmoreAnalysis::compute`] with caller-provided storage — the
    /// numbers are **bit-exact** with `compute`; only the allocations go
    /// away.
    #[must_use]
    pub fn compute_with(tree: &TreeView<'_>, tech: &Technology, ws: &mut ElmoreWorkspace) -> Self {
        let graph = tree.graph();
        let n = graph.node_count();

        // Leaves-first: subtree capacitances (node cap + child subtrees +
        // child edge caps).
        let mut subtree_cap = std::mem::take(&mut ws.subtree_cap);
        subtree_cap.clear();
        subtree_cap.resize(n, 0.0);
        for node in graph.node_ids() {
            let own = match graph.kind(node).expect("iterating graph nodes") {
                NodeKind::Pin { pin } if pin != 0 => tech.sink_capacitance,
                _ => 0.0,
            };
            subtree_cap[node.index()] = own;
        }
        for node in tree.leaves_first_order() {
            if let Some((parent, edge_id)) = tree.parent(node) {
                let edge = graph.edge(edge_id).expect("tree edges are live");
                let edge_cap = tech.wire_capacitance(edge.length(), edge.width());
                subtree_cap[parent.index()] += subtree_cap[node.index()] + edge_cap;
            }
        }
        let total_cap = subtree_cap[tree.root().index()];

        // Root-first: path delays.
        let mut per_node = std::mem::take(&mut ws.per_node);
        per_node.clear();
        per_node.resize(n, 0.0);
        per_node[tree.root().index()] = tech.driver_resistance * total_cap;
        for &node in tree.root_first_order() {
            if let Some((parent, edge_id)) = tree.parent(node) {
                let edge = graph.edge(edge_id).expect("tree edges are live");
                let r = tech.wire_resistance(edge.length(), edge.width());
                let c = tech.wire_capacitance(edge.length(), edge.width());
                per_node[node.index()] =
                    per_node[parent.index()] + r * (c / 2.0 + subtree_cap[node.index()]);
            }
        }

        let mut sinks = std::mem::take(&mut ws.sinks);
        sinks.clear();
        sinks.extend(
            graph
                .pin_nodes()
                .filter(|&(_, pin)| pin != 0)
                .map(|(node, pin)| (pin, node)),
        );
        sinks.sort_unstable_by_key(|&(pin, _)| pin);

        Self {
            per_node,
            subtree_cap,
            total_cap,
            sinks,
        }
    }

    /// Hands this analysis' storage back to `ws`, where the next
    /// [`ElmoreAnalysis::compute_with`] call will reuse it.
    pub fn recycle(self, ws: &mut ElmoreWorkspace) {
        ws.per_node = self.per_node;
        ws.subtree_cap = self.subtree_cap;
        ws.sinks = self.sinks;
    }

    /// The Elmore delay of `node`, in seconds.
    ///
    /// # Panics
    ///
    /// Panics when `node` is not a node of the analyzed tree.
    #[must_use]
    pub fn delay(&self, node: NodeId) -> f64 {
        self.per_node[node.index()]
    }

    /// The per-sink delays in net pin order (`n_1..n_k`), in seconds.
    #[must_use]
    pub fn sink_delays(&self) -> Vec<f64> {
        self.sinks
            .iter()
            .map(|&(_, node)| self.per_node[node.index()])
            .collect()
    }

    /// The sink node with the largest Elmore delay.
    #[must_use]
    pub fn max_sink(&self) -> Option<NodeId> {
        self.sinks
            .iter()
            .max_by(|a, b| self.per_node[a.1.index()].total_cmp(&self.per_node[b.1.index()]))
            .map(|&(_, node)| node)
    }

    /// The maximum sink delay `t_ED(T) = max_i t_ED(n_i)`, in seconds.
    #[must_use]
    pub fn max_sink_delay(&self) -> f64 {
        self.sinks
            .iter()
            .map(|&(_, node)| self.per_node[node.index()])
            .fold(0.0, f64::max)
    }

    /// The criticality-weighted delay `Σ αᵢ·t(nᵢ)` of the CSORG objective.
    ///
    /// # Panics
    ///
    /// Panics when `alphas.len()` differs from the sink count.
    #[must_use]
    pub fn weighted_delay(&self, alphas: &[f64]) -> f64 {
        assert_eq!(
            alphas.len(),
            self.sinks.len(),
            "one criticality per sink required"
        );
        self.sinks
            .iter()
            .zip(alphas)
            .map(|(&(_, node), &a)| a * self.per_node[node.index()])
            .sum()
    }

    /// Total capacitance `C(T)` of the tree (wire + sink loads), in F.
    #[must_use]
    pub fn total_capacitance(&self) -> f64 {
        self.total_cap
    }

    /// The capacitance of the subtree rooted at `node` (excluding the edge
    /// to its parent), in F.
    ///
    /// # Panics
    ///
    /// Panics when `node` is not a node of the analyzed tree.
    #[must_use]
    pub fn subtree_capacitance(&self, node: NodeId) -> f64 {
        self.subtree_cap[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_geom::{Net, Point};
    use ntr_graph::{prim_mst, RoutingGraph, TreeView};

    fn tech() -> Technology {
        Technology::date94()
    }

    /// Hand-computed two-node chain: source --1000um-- sink.
    #[test]
    fn single_wire_matches_hand_formula() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(1000.0, 0.0)]).unwrap();
        let mst = prim_mst(&net);
        let tree = TreeView::new(&mst).unwrap();
        let t = tech();
        let a = ElmoreAnalysis::compute(&tree, &t);
        let c_wire = t.wire_capacitance(1000.0, 1.0);
        let r_wire = t.wire_resistance(1000.0, 1.0);
        let total = c_wire + t.sink_capacitance;
        let expect = t.driver_resistance * total + r_wire * (c_wire / 2.0 + t.sink_capacitance);
        assert!((a.max_sink_delay() - expect).abs() < 1e-20);
        assert!((a.total_capacitance() - total).abs() < 1e-27);
    }

    /// Three-pin chain: farther sink strictly slower; root delay counts all
    /// capacitance.
    #[test]
    fn chain_delays_are_monotone_along_path() {
        let net = Net::new(
            Point::new(0.0, 0.0),
            vec![Point::new(1000.0, 0.0), Point::new(3000.0, 0.0)],
        )
        .unwrap();
        let mst = prim_mst(&net);
        let tree = TreeView::new(&mst).unwrap();
        let a = ElmoreAnalysis::compute(&tree, &tech());
        let sinks = a.sink_delays();
        assert!(sinks[1] > sinks[0]);
        assert_eq!(a.max_sink(), Some(tree.graph().node_ids().nth(2).unwrap()));
    }

    /// Steiner nodes carry no capacitance: inserting a degree-2 Steiner
    /// point in the middle of a wire leaves every delay unchanged.
    #[test]
    fn steiner_split_preserves_delay() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(2000.0, 0.0)]).unwrap();
        let direct = prim_mst(&net);
        let t = tech();
        let direct_tree = TreeView::new(&direct).unwrap();
        let d_direct = ElmoreAnalysis::compute(&direct_tree, &t).max_sink_delay();

        let mut split = RoutingGraph::from_net(&net);
        let sink = split.node_ids().nth(1).unwrap();
        let mid = split.add_steiner(Point::new(1000.0, 0.0));
        split.add_edge(split.source(), mid).unwrap();
        split.add_edge(mid, sink).unwrap();
        let split_tree = TreeView::new(&split).unwrap();
        let d_split = ElmoreAnalysis::compute(&split_tree, &t).max_sink_delay();

        // The c/2 lumping telescopes: the Elmore delay of a uniform wire is
        // invariant under splitting it at a zero-capacitance junction.
        assert!((d_direct - d_split).abs() < 1e-20);
    }

    /// Wider edges reduce delay on resistance-dominated paths.
    #[test]
    fn wider_wire_cuts_delay_when_resistance_dominates() {
        let net = Net::new(Point::new(0.0, 0.0), vec![Point::new(10_000.0, 0.0)]).unwrap();
        let mut g = RoutingGraph::from_net(&net);
        let sink = g.node_ids().nth(1).unwrap();
        let e = g.add_edge(g.source(), sink).unwrap();
        let t = tech();
        let narrow = {
            let tree = TreeView::new(&g).unwrap();
            ElmoreAnalysis::compute(&tree, &t).max_sink_delay()
        };
        g.set_width(e, 3.0).unwrap();
        let wide = {
            let tree = TreeView::new(&g).unwrap();
            ElmoreAnalysis::compute(&tree, &t).max_sink_delay()
        };
        // 10 mm: wire R = 300 ohm dominates the 100 ohm driver, so widening
        // pays off despite the tripled capacitance... only when it does; we
        // assert the exact hand values instead of the direction.
        let hand = |w: f64| {
            let r = t.wire_resistance(10_000.0, w);
            let c = t.wire_capacitance(10_000.0, w);
            t.driver_resistance * (c + t.sink_capacitance) + r * (c / 2.0 + t.sink_capacitance)
        };
        assert!((narrow - hand(1.0)).abs() < 1e-18);
        assert!((wide - hand(3.0)).abs() < 1e-18);
    }

    /// A reused workspace (across trees of different sizes) gives results
    /// identical to the allocating path.
    #[test]
    fn workspace_reuse_is_bit_exact() {
        let t = tech();
        let mut ws = ElmoreWorkspace::new();
        for sinks in [5usize, 2, 7] {
            let pts: Vec<Point> = (1..=sinks)
                .map(|i| Point::new(500.0 * i as f64, 130.0 * (i % 3) as f64))
                .collect();
            let net = Net::new(Point::new(0.0, 0.0), pts).unwrap();
            let mst = prim_mst(&net);
            let tree = TreeView::new(&mst).unwrap();
            let reference = ElmoreAnalysis::compute(&tree, &t);
            let pooled = ElmoreAnalysis::compute_with(&tree, &t, &mut ws);
            assert_eq!(pooled, reference);
            for (a, b) in pooled
                .sink_delays()
                .iter()
                .zip(reference.sink_delays().iter())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            pooled.recycle(&mut ws);
        }
    }

    /// Weighted delay with all-equal criticalities is the sum of delays.
    #[test]
    fn weighted_delay_reduces_to_sum() {
        let net = Net::new(
            Point::new(0.0, 0.0),
            vec![Point::new(500.0, 0.0), Point::new(0.0, 700.0)],
        )
        .unwrap();
        let mst = prim_mst(&net);
        let tree = TreeView::new(&mst).unwrap();
        let a = ElmoreAnalysis::compute(&tree, &tech());
        let sum: f64 = a.sink_delays().iter().sum();
        assert!((a.weighted_delay(&[1.0, 1.0]) - sum).abs() < 1e-20);
        // Single critical sink selects that sink's delay.
        assert!((a.weighted_delay(&[0.0, 1.0]) - a.sink_delays()[1]).abs() < 1e-20);
    }
}
