//! Cross-validation of the O(k) tree Elmore engine against the moment
//! analysis of the MNA simulator — two completely independent
//! implementations of the same quantity.

use ntr_circuit::{extract, ExtractOptions, Segmentation, Technology};
use ntr_elmore::ElmoreAnalysis;
use ntr_geom::{Layout, NetGenerator};
use ntr_graph::{prim_mst, TreeView};
use ntr_spice::Moments;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On random MSTs, RPH tree Elmore equals the first moment of the MNA
    /// system to 1e-9 relative — for any wire segmentation, because the
    /// Elmore delay of a uniform RC line is segmentation-invariant.
    #[test]
    fn tree_elmore_equals_mna_first_moment(
        seed in 0u64..500,
        size in 2usize..20,
        segs in 1usize..6,
    ) {
        let net = NetGenerator::new(Layout::date94(), seed).random_net(size).unwrap();
        let mst = prim_mst(&net);
        let tech = Technology::date94();

        let tree = TreeView::new(&mst).unwrap();
        let rph = ElmoreAnalysis::compute(&tree, &tech).sink_delays();

        let opts = ExtractOptions {
            segmentation: Segmentation::PerEdge(segs),
            include_inductance: false,
        };
        let extracted = extract(&mst, &tech, &opts).unwrap();
        let moments = Moments::compute(&extracted.circuit, 1).unwrap();
        for (i, &node) in extracted.sink_nodes.iter().enumerate() {
            let m1 = moments.elmore_of_node(node).unwrap();
            let rel = (rph[i] - m1).abs() / m1.max(1e-30);
            prop_assert!(rel < 1e-9, "sink {i}: rph={} mna={} rel={rel}", rph[i], m1);
        }
    }

    /// Elmore monotonicity: inflating the sink loads never reduces any
    /// sink's delay.
    #[test]
    fn extra_load_never_helps(seed in 0u64..300, size in 2usize..15, factor in 1.0f64..5.0) {
        let net = NetGenerator::new(Layout::date94(), seed).random_net(size).unwrap();
        let mst = prim_mst(&net);
        let tree = TreeView::new(&mst).unwrap();
        let mut tech = Technology::date94();
        let base = ElmoreAnalysis::compute(&tree, &tech).sink_delays();
        tech.sink_capacitance *= factor;
        let loaded = ElmoreAnalysis::compute(&tree, &tech).sink_delays();
        for (b, l) in base.iter().zip(&loaded) {
            prop_assert!(l >= b);
        }
    }

    /// The non-tree moment engine is segmentation-invariant: after adding
    /// the H2 shortcut edge (a cycle), the per-sink graph Elmore delays are
    /// identical under 1-segment and 5-segment wire models. This exercises
    /// the non-tree code path the RPH formula cannot reach.
    #[test]
    fn graph_elmore_is_segmentation_invariant(seed in 0u64..200) {
        let net = NetGenerator::new(Layout::date94(), seed).random_net(12).unwrap();
        let mut g = prim_mst(&net);
        let tech = Technology::date94();
        let tree = TreeView::new(&g).unwrap();
        let analysis = ElmoreAnalysis::compute(&tree, &tech);
        let worst = analysis.max_sink().unwrap();
        drop(tree);
        prop_assume!(!g.has_edge(g.source(), worst));
        g.add_edge(g.source(), worst).unwrap();
        assert!(!g.is_tree());

        let delays = |segs: usize| -> Vec<f64> {
            let opts = ExtractOptions {
                segmentation: Segmentation::PerEdge(segs),
                include_inductance: false,
            };
            let ex = extract(&g, &tech, &opts).unwrap();
            let m = Moments::compute(&ex.circuit, 1).unwrap();
            ex.sink_nodes.iter().map(|&n| m.elmore_of_node(n).unwrap()).collect()
        };
        let coarse = delays(1);
        let fine = delays(5);
        for (a, b) in coarse.iter().zip(&fine) {
            let rel = (a - b).abs() / b.max(1e-30);
            prop_assert!(rel < 1e-9, "{a} vs {b}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Rectilinear embedding (inserting loadless bend nodes) leaves every
    /// sink's Elmore delay exactly unchanged — the RPH formula is
    /// invariant under splitting wires at zero-capacitance junctions.
    #[test]
    fn embedding_preserves_elmore(seed in 0u64..300, size in 2usize..15) {
        use ntr_graph::{embed_rectilinear, BendStyle};
        let net = NetGenerator::new(Layout::date94(), seed).random_net(size).unwrap();
        let mst = prim_mst(&net);
        let tech = Technology::date94();
        let before = {
            let tree = TreeView::new(&mst).unwrap();
            ElmoreAnalysis::compute(&tree, &tech).sink_delays()
        };
        for style in [BendStyle::HorizontalFirst, BendStyle::VerticalFirst] {
            let embedded = embed_rectilinear(&mst, style);
            let tree = TreeView::new(&embedded).unwrap();
            let after = ElmoreAnalysis::compute(&tree, &tech).sink_delays();
            for (a, b) in before.iter().zip(&after) {
                prop_assert!((a - b).abs() < 1e-18 + 1e-12 * a, "{a} vs {b}");
            }
        }
    }
}
